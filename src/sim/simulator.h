// The discrete-event simulator that every experiment runs on.
//
// Components schedule callbacks at future simulated times; Run* methods
// advance virtual time event by event. Time never flows backward, execution
// is single-threaded, and ordering is deterministic (FIFO among events
// scheduled for the same instant), so a given seed reproduces a run exactly.

#ifndef SOFTTIMER_SRC_SIM_SIMULATOR_H_
#define SOFTTIMER_SRC_SIM_SIMULATOR_H_

#include <cstdint>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace softtimer {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  SimTime now() const { return now_; }

  // Schedules `cb` at absolute time `t`. Times in the past are clamped to
  // now() (the event runs on the current instant, after already-queued
  // events for that instant).
  EventHandle ScheduleAt(SimTime t, Callback cb);

  // Schedules `cb` after a relative delay (negative delays clamp to zero).
  EventHandle ScheduleAfter(SimDuration d, Callback cb);

  // Cancels a pending event; returns false if it already ran.
  bool Cancel(EventHandle h);

  // Runs events in time order until the queue is empty or an event at a time
  // beyond `until` would be next; leaves now() == until (or the last event
  // time if the queue drained early and that is later than now()).
  void RunUntil(SimTime until);

  // Convenience: RunUntil(now() + d).
  void RunFor(SimDuration d);

  // Runs until the queue is empty or `stop_requested`. `hard_cap` guards
  // against runaway self-rescheduling loops.
  void RunUntilIdle(SimTime hard_cap = SimTime::Max());

  // Executes the single earliest event; returns false if the queue is empty.
  bool Step();

  // Callable from inside an event handler: makes the current Run* call
  // return after the handler completes.
  void RequestStop() { stop_requested_ = true; }

  bool queue_empty() const { return queue_.empty(); }
  size_t queue_size() const { return queue_.size(); }
  uint64_t events_processed() const { return events_processed_; }

 private:
  EventQueue queue_;
  SimTime now_;
  bool stop_requested_ = false;
  uint64_t events_processed_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_SIM_SIMULATOR_H_
