#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace softtimer {

EventHandle EventQueue::Push(SimTime when, Callback cb) {
  uint64_t id = next_id_++;
  heap_.push(HeapEntry{when, next_seq_++, id});
  live_.emplace(id, std::move(cb));
  return EventHandle{id};
}

bool EventQueue::Cancel(EventHandle h) {
  if (!h.valid()) {
    return false;
  }
  return live_.erase(h.id) > 0;
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty() && live_.find(heap_.top().id) == live_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  SkimCancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Entry EventQueue::Pop() {
  SkimCancelled();
  assert(!heap_.empty());
  HeapEntry top = heap_.top();
  heap_.pop();
  auto it = live_.find(top.id);
  Entry e{top.time, std::move(it->second)};
  live_.erase(it);
  return e;
}

}  // namespace softtimer
