#include "src/sim/simulator.h"

#include <utility>

namespace softtimer {

EventHandle Simulator::ScheduleAt(SimTime t, Callback cb) {
  if (t < now_) {
    t = now_;
  }
  return queue_.Push(t, std::move(cb));
}

EventHandle Simulator::ScheduleAfter(SimDuration d, Callback cb) {
  if (d < SimDuration::Zero()) {
    d = SimDuration::Zero();
  }
  return queue_.Push(now_ + d, std::move(cb));
}

bool Simulator::Cancel(EventHandle h) { return queue_.Cancel(h); }

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  EventQueue::Entry e = queue_.Pop();
  now_ = e.time;
  ++events_processed_;
  e.cb();
  return true;
}

void Simulator::RunUntil(SimTime until) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= until) {
    Step();
  }
  if (!stop_requested_ && now_ < until) {
    now_ = until;
  }
}

void Simulator::RunFor(SimDuration d) { RunUntil(now_ + d); }

void Simulator::RunUntilIdle(SimTime hard_cap) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= hard_cap) {
    Step();
  }
}

}  // namespace softtimer
