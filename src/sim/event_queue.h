// Pending-event store for the discrete-event simulator.
//
// A binary heap keyed on (time, sequence number) gives deterministic FIFO
// ordering among events scheduled for the same instant. Cancellation is
// lazy: Cancel() drops the callback immediately, and the heap entry is
// discarded when it surfaces.

#ifndef SOFTTIMER_SRC_SIM_EVENT_QUEUE_H_
#define SOFTTIMER_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/sim/time.h"

namespace softtimer {

// An opaque handle identifying one scheduled event. Default-constructed
// handles are invalid.
struct EventHandle {
  uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` for time `when`. Returns a handle usable with Cancel().
  EventHandle Push(SimTime when, Callback cb);

  // Cancels a pending event. Returns false if the event already ran or was
  // already cancelled.
  bool Cancel(EventHandle h);

  // True when no live events remain.
  bool empty() const { return live_.empty(); }

  // Number of live (not cancelled, not yet run) events.
  size_t size() const { return live_.size(); }

  // Time of the earliest live event. Precondition: !empty().
  SimTime next_time();

  // Removes and returns the earliest live event. Precondition: !empty().
  struct Entry {
    SimTime time;
    Callback cb;
  };
  Entry Pop();

 private:
  struct HeapEntry {
    SimTime time;
    uint64_t seq;
    uint64_t id;
    // Min-heap via greater-than.
    bool operator>(const HeapEntry& o) const {
      if (time != o.time) {
        return time > o.time;
      }
      return seq > o.seq;
    }
  };

  // Pops cancelled entries off the top of the heap.
  void SkimCancelled();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<uint64_t, Callback> live_;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_SIM_EVENT_QUEUE_H_
