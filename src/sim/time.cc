#include "src/sim/time.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace softtimer {

namespace {

std::string FormatNanos(int64_t ns) {
  char buf[64];
  double v = static_cast<double>(ns);
  if (std::llabs(ns) < 1'000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  } else if (std::llabs(ns) < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3gus", v / 1e3);
  } else if (std::llabs(ns) < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.4gms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6gs", v / 1e9);
  }
  return buf;
}

}  // namespace

std::string SimDuration::ToString() const { return FormatNanos(ns_); }

std::string SimTime::ToString() const { return FormatNanos(ns_); }

}  // namespace softtimer
