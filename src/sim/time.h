// Simulated-time types used throughout the softtimer codebase.
//
// All simulation happens on an integer nanosecond timeline. Two strong types
// keep points-in-time and spans-of-time from being mixed up:
//
//   SimDuration  - a signed span of simulated time (nanosecond resolution).
//   SimTime      - a point on the simulated timeline, measured from the
//                  simulation origin (t = 0).
//
// The soft-timer facility itself (src/core) deals in *ticks* of a coarser
// measurement clock (typically 1 MHz); the conversion lives in
// src/core/clock_source.h. Everything below the facility uses these types.

#ifndef SOFTTIMER_SRC_SIM_TIME_H_
#define SOFTTIMER_SRC_SIM_TIME_H_

#include <compare>
#include <cstdint>
#include <string>

namespace softtimer {

// A signed span of simulated time with nanosecond resolution.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  // Named constructors. Fractional factories round to the nearest nanosecond,
  // so SimDuration::Micros(4.45) is exactly 4450 ns.
  static constexpr SimDuration Nanos(int64_t ns) { return SimDuration(ns); }
  static constexpr SimDuration Micros(double us) {
    return SimDuration(RoundToNanos(us * 1e3));
  }
  static constexpr SimDuration Millis(double ms) {
    return SimDuration(RoundToNanos(ms * 1e6));
  }
  static constexpr SimDuration Seconds(double s) {
    return SimDuration(RoundToNanos(s * 1e9));
  }
  static constexpr SimDuration Zero() { return SimDuration(0); }
  static constexpr SimDuration Max() { return SimDuration(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(ns_ + o.ns_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimDuration operator-() const { return SimDuration(-ns_); }
  constexpr SimDuration operator*(int64_t k) const { return SimDuration(ns_ * k); }
  constexpr SimDuration operator*(double k) const { return SimDuration(RoundToNanos(static_cast<double>(ns_) * k)); }
  constexpr SimDuration operator/(int64_t k) const { return SimDuration(ns_ / k); }
  constexpr int64_t operator/(SimDuration o) const { return ns_ / o.ns_; }
  SimDuration& operator+=(SimDuration o) { ns_ += o.ns_; return *this; }
  SimDuration& operator-=(SimDuration o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  // Human-readable rendering with an auto-selected unit, e.g. "4.45us".
  std::string ToString() const;

 private:
  constexpr explicit SimDuration(int64_t ns) : ns_(ns) {}
  static constexpr int64_t RoundToNanos(double v) {
    return static_cast<int64_t>(v >= 0 ? v + 0.5 : v - 0.5);
  }

  int64_t ns_ = 0;
};

// A point on the simulated timeline. SimTime() is the simulation origin.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime Zero() { return SimTime(); }
  static constexpr SimTime FromNanos(int64_t ns) { return SimTime(ns); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos_since_origin() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr SimTime operator+(SimDuration d) const { return SimTime(ns_ + d.nanos()); }
  constexpr SimTime operator-(SimDuration d) const { return SimTime(ns_ - d.nanos()); }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration::Nanos(ns_ - o.ns_); }
  SimTime& operator+=(SimDuration d) { ns_ += d.nanos(); return *this; }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

  int64_t ns_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_SIM_TIME_H_
