// Deterministic random number generation for the simulator.
//
// All randomness in the codebase flows through Rng so that every experiment
// is reproducible from a single seed. The generator is xoshiro256** (Blackman
// & Vigna), seeded through SplitMix64; both are implemented here from the
// published reference algorithms so the library has no external dependencies.
//
// Rng::Fork() derives statistically independent substreams, which lets each
// simulated component (per-connection jitter, packet arrival processes, ...)
// own a private stream whose draws do not perturb its neighbours.

#ifndef SOFTTIMER_SRC_SIM_RANDOM_H_
#define SOFTTIMER_SRC_SIM_RANDOM_H_

#include <array>
#include <cstdint>

#include "src/sim/time.h"

namespace softtimer {

class Rng {
 public:
  // Seeds the state via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(uint64_t seed);

  // Raw 64 uniform bits.
  uint64_t NextU64();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection sampling
  // (Lemire-style) to avoid modulo bias.
  uint64_t UniformU64(uint64_t bound);

  // Uniform integer in [lo, hi], inclusive on both ends. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Normal via Marsaglia polar method.
  double Normal(double mean, double stddev);

  // Log-normal parameterized by its *median* (= exp(mu)) and sigma, which is
  // the natural parameterization for service-time jitter: median stays put
  // while sigma controls the weight of the right tail.
  double LogNormalMedian(double median, double sigma);

  // Pareto with scale xm and shape alpha, truncated at cap (values above cap
  // are clamped). Used for heavy-tailed think/compute bursts.
  double ParetoBounded(double xm, double alpha, double cap);

  // Duration-typed conveniences.
  SimDuration ExpDuration(SimDuration mean);
  SimDuration LogNormalDuration(SimDuration median, double sigma);

  // Derives an independent substream; `stream_id` distinguishes children of
  // the same parent.
  Rng Fork(uint64_t stream_id);

 private:
  std::array<uint64_t, 4> s_{};
  // Cached second variate from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_SIM_RANDOM_H_
