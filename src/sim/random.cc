#include "src/sim/random.h"

#include <cassert>
#include <cmath>

namespace softtimer {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& w : s_) {
    w = SplitMix64(x);
  }
  // All-zero state is the one invalid state for xoshiro; seed 0 through
  // SplitMix64 cannot produce it, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded generation.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformU64(span));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // 1 - u is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * (u * factor);
}

double Rng::LogNormalMedian(double median, double sigma) {
  assert(median > 0);
  return median * std::exp(Normal(0.0, sigma));
}

double Rng::ParetoBounded(double xm, double alpha, double cap) {
  assert(xm > 0 && alpha > 0 && cap >= xm);
  double u = NextDouble();
  double v = xm / std::pow(1.0 - u, 1.0 / alpha);
  return v > cap ? cap : v;
}

SimDuration Rng::ExpDuration(SimDuration mean) {
  return SimDuration::Nanos(
      static_cast<int64_t>(Exponential(static_cast<double>(mean.nanos()))));
}

SimDuration Rng::LogNormalDuration(SimDuration median, double sigma) {
  return SimDuration::Nanos(static_cast<int64_t>(
      LogNormalMedian(static_cast<double>(median.nanos()), sigma)));
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the child id into fresh draws from the parent so substreams are
  // decorrelated from one another and from the parent's future output.
  uint64_t seed = NextU64() ^ (stream_id * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL);
  return Rng(seed);
}

}  // namespace softtimer
