// ShardedPacingRuntime: per-shard pacing wheels over a
// ShardedSoftTimerRuntime.
//
// Scale-out story (ROADMAP: "heavy traffic from millions of users"): each
// runtime shard owns one PacingWheel + PacingWheelHost on that shard's
// facility, so pacing costs one soft event per *shard*, flows are pinned to
// the shard that transmits them, and every hot-path operation stays on the
// owner thread with zero cross-core traffic.
//
// Flow ids carry the shard byte (WithTimerIdShard, like the runtime's
// SoftEventIds), so any thread can route a control operation from the id
// alone. Cross-core control (re-rate / activate / deactivate / budget) is a
// thin layer over the runtime's existing SPSC command rings: the mutation
// is packaged as an immediate soft event on the owner shard, which applies
// it at the shard's next trigger state. Cross-core commands are control
// plane: their handler capture exceeds the std::function inline buffer, so
// each enqueue allocates once — the data plane (wheel drains, emissions,
// re-buckets) remains allocation-free.
//
// Threading: AddFlowOnShard / *OnShard calls are owner-thread-only (they
// touch the shard's wheel directly). *CrossCore calls require a registered
// ProducerToken, same as the runtime's.

#ifndef SOFTTIMER_SRC_PACING_SHARDED_PACING_H_
#define SOFTTIMER_SRC_PACING_SHARDED_PACING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/sharded_soft_timer_runtime.h"
#include "src/pacing/pacing_wheel.h"
#include "src/pacing/pacing_wheel_host.h"

namespace softtimer {

class ShardedPacingRuntime {
 public:
  struct Config {
    // Per-shard wheel geometry.
    PacingWheel::Config wheel;
    // Facility handler tag for the per-shard wheel events.
    uint32_t handler_tag = 0;
  };

  // `rt` must outlive this object; one wheel + host is built per runtime
  // shard.
  ShardedPacingRuntime(ShardedSoftTimerRuntime* rt, Config config);

  size_t num_shards() const { return shards_.size(); }

  // Which shard an id returned by AddFlowOnShard is pinned to.
  static size_t ShardOf(PacedFlowId id) { return TimerIdShard(id.value); }

  PacingWheel& shard_wheel(size_t shard) { return *shards_[shard]->wheel; }
  PacingWheelHost& shard_host(size_t shard) { return *shards_[shard]->host; }

  // Sets the drain sink for one shard (owner thread, before traffic).
  void BindSink(size_t shard, PacingWheel::BatchSink* sink) {
    shards_[shard]->host->set_sink(sink);
  }

  // --- Owner-thread API (the shard's thread only) -----------------------
  // Registers a flow pinned to `shard`; the returned id carries the shard
  // byte.
  PacedFlowId AddFlowOnShard(size_t shard, const PacedFlowConfig& config);

  bool ActivateOnShard(PacedFlowId id, uint64_t initial_delay_ticks = 0);
  bool DeactivateOnShard(PacedFlowId id);
  bool ReRateOnShard(PacedFlowId id, uint64_t target_interval_ticks,
                     uint64_t min_burst_interval_ticks);
  bool AddBudgetOnShard(PacedFlowId id, uint32_t packets);
  bool RemoveFlowOnShard(PacedFlowId id);

  // Busy-poll hook for the shard's loop: opportunistic wheel drain.
  size_t PollShard(size_t shard) { return shards_[shard]->host->Poll(); }

  // --- Cross-core control plane (any registered producer thread) --------
  // Each routes by the id's shard byte and enqueues the mutation on that
  // shard's command ring; it is applied at the shard's next trigger state.
  // Returns false when the target ring is full (bounded backpressure —
  // retry after the shard drains) or the id's shard is out of range.
  bool ReRateCrossCore(ShardedSoftTimerRuntime::ProducerToken& token,
                       PacedFlowId id, uint64_t target_interval_ticks,
                       uint64_t min_burst_interval_ticks);
  bool ActivateCrossCore(ShardedSoftTimerRuntime::ProducerToken& token,
                         PacedFlowId id, uint64_t initial_delay_ticks = 0);
  bool DeactivateCrossCore(ShardedSoftTimerRuntime::ProducerToken& token,
                           PacedFlowId id);
  bool AddBudgetCrossCore(ShardedSoftTimerRuntime::ProducerToken& token,
                          PacedFlowId id, uint32_t packets);

 private:
  struct Shard {
    std::unique_ptr<PacingWheel> wheel;
    std::unique_ptr<PacingWheelHost> host;
  };

  // Validates the id's shard byte and returns the shard-local id.
  bool Route(PacedFlowId id, size_t* shard, PacedFlowId* local) const;

  ShardedSoftTimerRuntime* rt_;
  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_PACING_SHARDED_PACING_H_
