#include "src/pacing/pacing_wheel.h"

#include <algorithm>
#include <cassert>

namespace softtimer {

namespace {

// Drain sweeps prefetch this many nodes ahead of the one being processed;
// the slot vectors are dense index arrays precisely so the sweep's memory
// traffic is a predictable stream instead of a pointer chase. 16 nodes at
// the ~20 ns/node sweep rate covers a full DRAM miss when the slab
// outgrows the LLC (the 1M-flow point), and the prefetch is for WRITE:
// every swept node is mutated (train state, deadline), so read-intent
// would eat a second ownership miss on the store.
constexpr size_t kPrefetchLookahead = 16;

constexpr uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

PacingWheel::PacingWheel(Config config) : config_(config) {
  assert(config_.quantum_ticks > 0);
  // The occupancy scan walks whole 64-bit words; a minimum of 64 slots keeps
  // it trivially correct, and nobody wants a smaller wheel anyway.
  num_slots_ = RoundUpPow2(std::max<uint32_t>(config_.num_slots, 64));
  slot_mask_ = num_slots_ - 1;
  assert(config_.quantum_ticks * num_slots_ <= UINT32_MAX &&
         "wheel horizon must stay addressable by 32-bit delays");
  outer_slots_count_ = RoundUpPow2(std::max<uint32_t>(config_.overflow_slots, 2));
  outer_mask_ = outer_slots_count_ - 1;
  if (config_.max_batch == 0) {
    config_.max_batch = 1;
  }
  slots_.resize(num_slots_);
  outer_slots_.resize(outer_slots_count_);
  occupancy_.assign(num_slots_ / 64, 0);
  if (config_.reserve_slot_capacity > 0) {
    for (Slot& slot : slots_) {
      slot.entries.reserve(config_.reserve_slot_capacity);
    }
    scratch_.reserve(config_.reserve_slot_capacity);
    batch_.reserve(config_.max_batch);
    slot_capacity_high_water_ = config_.reserve_slot_capacity;
  }
}

void PacingWheel::set_max_batch(size_t max_batch) {
  assert(!draining_ && "retune batches from control paths, not mid-drain");
  config_.max_batch = std::max<size_t>(max_batch, 1);
  if (batch_.capacity() < config_.max_batch) {
    batch_.reserve(config_.max_batch);
  }
}

PacedFlowId PacingWheel::AddFlow(const PacedFlowConfig& config) {
  assert(config.target_interval_ticks > 0);
  uint32_t index = slab_.Allocate();
  PacedFlowNode& node = slab_.at(index);
  node.flags = 0;
  node.slot = kNilPacingSlot;
  node.next = kNilTimerIndex;
  node.deadline = 0;
  node.train = PacedTrain{};
  uint64_t target = std::min<uint64_t>(config.target_interval_ticks, UINT32_MAX);
  node.target_interval_ticks = static_cast<uint32_t>(target);
  node.min_burst_interval_ticks = static_cast<uint32_t>(std::clamp<uint64_t>(
      config.min_burst_interval_ticks, 1, target));
  node.max_coalesced_burst_packets = config.max_coalesced_burst_packets;
  // UINT32_MAX is the internal "unlimited" sentinel (config 0).
  node.packets_remaining =
      config.packet_budget == 0 ? UINT32_MAX
                                : std::min(config.packet_budget, UINT32_MAX - 1);
  node.user_data = config.user_data;
  return PacedFlowId{PackTimerIdValue(index, node.generation)};
}

// SOFTTIMER_COLD: amortized slot-vector growth - entered only when a slot
// sits exactly at capacity, and capacity jumps straight to the global
// high-water mark, so steady state re-enters only when the process-wide
// occupancy record is broken (see slot_capacity_high_water_).
void PacingWheel::GrowSlotEntries(Slot& slot) {
  size_t doubled = slot.entries.capacity() == 0 ? 8 : slot.entries.capacity() * 2;
  slot.entries.reserve(std::max<size_t>(doubled, slot_capacity_high_water_));
}

void PacingWheel::ParkNode(uint32_t index, PacedFlowNode& node) {
  uint32_t oi = OuterSlotIndexFor(node.deadline);
  Slot& slot = outer_slots_[oi];
  node.slot = kOuterPacingSlotBase + oi;
  node.next = static_cast<uint32_t>(slot.entries.size());
  if (slot.entries.size() == slot.entries.capacity()) {
    GrowSlotEntries(slot);
  }
  slot.entries.push_back(index);  // lint:allow-alloc
  if (node.deadline < slot.min_deadline) {
    slot.min_deadline = node.deadline;
  }
  if (node.deadline < next_due_tick_) {
    next_due_tick_ = node.deadline;
  }
  ++parked_;
}

void PacingWheel::UnlinkParked(uint32_t index, PacedFlowNode& node) {
  Slot& slot = outer_slots_[node.slot - kOuterPacingSlotBase];
  uint32_t pos = node.next;
  uint32_t moved = slot.entries.back();
  slot.entries[pos] = moved;
  slab_.at(moved).next = pos;
  slot.entries.pop_back();
  if (slot.entries.empty()) {
    slot.min_deadline = UINT64_MAX;
  }
  node.slot = kNilPacingSlot;
  node.next = kNilTimerIndex;
  (void)index;
  --parked_;
  if (queued_ == 0 && parked_ == 0) {
    next_due_tick_ = UINT64_MAX;
  }
}

void PacingWheel::AttachNode(uint32_t index, PacedFlowNode& node,
                             uint64_t now_tick) {
  // Mirrors the pre-overflow-ring clamp bound: a deadline the inner wheel
  // can represent without aliasing the current quantum links directly;
  // anything farther parks (exact, never clamped).
  if (node.deadline - now_tick <= horizon_ticks() - config_.quantum_ticks) {
    LinkNode(index, node);
  } else {
    ParkNode(index, node);
    ++stats_.overflow_parks;
  }
}

bool PacingWheel::IsLinked(uint32_t index, const PacedFlowNode& node) const {
  return node.slot < num_slots_ &&
         node.next < slots_[node.slot].entries.size() &&
         slots_[node.slot].entries[node.next] == index;
}

void PacingWheel::LinkNode(uint32_t index, PacedFlowNode& node) {
  uint32_t s = SlotIndexFor(node.deadline);
  Slot& slot = slots_[s];
  node.slot = s;
  node.next = static_cast<uint32_t>(slot.entries.size());
  if (slot.entries.size() == slot.entries.capacity()) {
    GrowSlotEntries(slot);
  }
  slot.entries.push_back(index);  // lint:allow-alloc
  if (slot.entries.capacity() > slot_capacity_high_water_) {
    slot_capacity_high_water_ = static_cast<uint32_t>(slot.entries.capacity());
  }
  if (node.next == 0) {
    MarkOccupied(s);
  }
  if (node.deadline < slot.min_deadline) {
    slot.min_deadline = node.deadline;
  }
  if (node.deadline < next_due_tick_) {
    next_due_tick_ = node.deadline;
  }
  ++queued_;
}

void PacingWheel::UnlinkNode(uint32_t index, PacedFlowNode& node) {
  Slot& slot = slots_[node.slot];
  uint32_t pos = node.next;
  uint32_t moved = slot.entries.back();
  slot.entries[pos] = moved;
  slab_.at(moved).next = pos;
  slot.entries.pop_back();
  if (slot.entries.empty()) {
    ClearOccupied(node.slot);
    slot.min_deadline = UINT64_MAX;
  }
  // A non-empty slot keeps a possibly stale-low min_deadline; that costs at
  // most one early wheel wake, never a late one. Same for next_due_tick_,
  // except when the wheel just went empty: then the gate resets exactly, so
  // an idle wheel never takes a spurious wake.
  node.slot = kNilPacingSlot;
  node.next = kNilTimerIndex;
  (void)index;
  --queued_;
  if (queued_ == 0 && parked_ == 0) {
    next_due_tick_ = UINT64_MAX;
  }
}

// SOFTTIMER_HOT
bool PacingWheel::Activate(PacedFlowId id, uint64_t now_tick,
                           uint64_t initial_delay_ticks) {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  PacedFlowNode& node = slab_.at(index);
  if (node.state == TimerNodeState::kCancelledDue &&
      (node.flags & kPacedFlowFlagIdleOnDue) == 0) {
    return false;  // RemoveFlow already claimed it mid-drain
  }
  bool detached = false;
  if (IsParked(node)) {
    UnlinkParked(index, node);
  } else if (IsLinked(index, node)) {
    UnlinkNode(index, node);
  } else if (node.slot != kNilPacingSlot) {
    // Sitting in the drain scratch of the slot being swept: update in place
    // and let the sweep's keep path relink it (linking here would leave two
    // live references to the node).
    detached = true;
  }
  node.state = TimerNodeState::kPending;
  node.flags = 0;
  node.deadline = now_tick + 1 + initial_delay_ticks;
  // Anchor the train at the scheduled first-emission tick, so only genuine
  // dispatch lateness (not the activation stagger) trips the first-packet
  // catch-up clamp.
  node.train.Start(node.deadline);
  if (!detached) {
    AttachNode(index, node, now_tick);
  }
  ++stats_.activations;
  return true;
}

// SOFTTIMER_HOT
bool PacingWheel::Deactivate(PacedFlowId id) {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  PacedFlowNode& node = slab_.at(index);
  if (node.state == TimerNodeState::kCancelledDue) {
    return true;  // removal or deactivation already pending
  }
  if (IsParked(node)) {
    UnlinkParked(index, node);
    ++stats_.deactivations;
    return true;
  }
  if (IsLinked(index, node)) {
    UnlinkNode(index, node);
    ++stats_.deactivations;
    return true;
  }
  if (node.slot != kNilPacingSlot) {
    // Mid-drain, detached into the sweep scratch: defer — the sweep frees
    // no storage and emits nothing for kCancelledDue nodes, and the idle
    // flag tells it to park the flow instead of freeing it.
    node.state = TimerNodeState::kCancelledDue;
    node.flags |= kPacedFlowFlagIdleOnDue;
    ++stats_.deferred_cancels;
    ++stats_.deactivations;
  }
  return true;  // already idle: idempotent success
}

bool PacingWheel::RemoveFlow(PacedFlowId id) {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  PacedFlowNode& node = slab_.at(index);
  if (node.state == TimerNodeState::kCancelledDue) {
    node.flags &= ~kPacedFlowFlagIdleOnDue;  // upgrade deactivate to removal
    return true;
  }
  if (IsParked(node)) {
    UnlinkParked(index, node);
  } else if (IsLinked(index, node)) {
    UnlinkNode(index, node);
  } else if (node.slot != kNilPacingSlot) {
    node.state = TimerNodeState::kCancelledDue;
    node.flags &= ~kPacedFlowFlagIdleOnDue;
    ++stats_.deferred_cancels;
    return true;  // the sweep frees the node when it reaches it
  }
  slab_.Free(index);
  return true;
}

// SOFTTIMER_HOT
bool PacingWheel::ReRate(PacedFlowId id, uint64_t now_tick,
                         uint64_t target_interval_ticks,
                         uint64_t min_burst_interval_ticks) {
  if (!slab_.IsCurrent(id.value) || target_interval_ticks == 0) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  PacedFlowNode& node = slab_.at(index);
  if (node.state == TimerNodeState::kCancelledDue &&
      (node.flags & kPacedFlowFlagIdleOnDue) == 0) {
    return false;
  }
  uint64_t target = std::min<uint64_t>(target_interval_ticks, UINT32_MAX);
  node.target_interval_ticks = static_cast<uint32_t>(target);
  node.min_burst_interval_ticks = static_cast<uint32_t>(
      std::clamp<uint64_t>(min_burst_interval_ticks, 1, target));
  ++stats_.re_rates;
  bool parked = IsParked(node);
  bool linked = !parked && IsLinked(index, node);
  bool detached = !parked && !linked && node.slot != kNilPacingSlot;
  if (!parked && !linked && !detached) {
    return true;  // idle: the new rate applies on the next Activate
  }
  // The rate change applies immediately: the pending emission moves to the
  // next tick and a fresh train starts there (so the new schedule line is
  // anchored at the re-rate, not at history under the old rate). A parked
  // flow re-rated to a representable interval leaves the overflow ring now,
  // not at its old far-future cascade.
  if (parked) {
    UnlinkParked(index, node);
  } else if (linked) {
    UnlinkNode(index, node);
  }
  node.state = TimerNodeState::kPending;
  node.flags = 0;
  node.deadline = now_tick + 1;
  node.train.Start(node.deadline);
  if (parked || linked) {
    LinkNode(index, node);
  }
  return true;
}

// SOFTTIMER_HOT
bool PacingWheel::AddBudget(PacedFlowId id, uint64_t now_tick,
                            uint32_t packets) {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  PacedFlowNode& node = slab_.at(index);
  if (node.state == TimerNodeState::kCancelledDue &&
      (node.flags & kPacedFlowFlagIdleOnDue) == 0) {
    return false;
  }
  if (node.packets_remaining == UINT32_MAX) {
    return true;  // unlimited
  }
  bool was_exhausted = node.packets_remaining == 0;
  uint64_t next = static_cast<uint64_t>(node.packets_remaining) + packets;
  node.packets_remaining =
      static_cast<uint32_t>(std::min<uint64_t>(next, UINT32_MAX - 1));
  if (was_exhausted && node.state == TimerNodeState::kPending &&
      node.slot == kNilPacingSlot) {
    // Auto-idled on exhaustion: resume at the next tick, train continued
    // (the backlog is bounded by the coalesced-burst cap, not replayed).
    node.deadline = now_tick + 1;
    LinkNode(index, node);
  }
  return true;
}

bool PacingWheel::active(PacedFlowId id) const {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  const PacedFlowNode& node = slab_.at(index);
  if (node.state == TimerNodeState::kCancelledDue) {
    return false;
  }
  return node.slot != kNilPacingSlot;
}

void PacingWheel::FlushBatch(BatchSink* sink, uint64_t now_tick) {
  if (batch_.empty()) {
    return;
  }
  ++stats_.batch_flushes;
  sink->OnPacedBatch(batch_.data(), batch_.size(), now_tick);
  batch_.clear();
}

// SOFTTIMER_HOT
size_t PacingWheel::Drain(uint64_t now_tick, BatchSink* sink) {
  assert(!draining_ && "PacingWheel::Drain is not reentrant");
  if (now_tick < next_due_tick_) {
    ++stats_.spurious_drains;
    return 0;
  }
  ++stats_.drains;
  draining_ = true;
  // Move every due outer window into the inner wheel first, so the sweep
  // below sees cascaded entries as ordinary slot members. Runs before any
  // sink callback: mutators never observe a node detached from the outer
  // ring.
  CascadeOverflow(now_tick);
  const uint64_t q = config_.quantum_ticks;
  const uint64_t horizon = horizon_ticks();
  uint64_t last = now_tick - (now_tick % q);  // current quantum's slot tick
  uint64_t cursor = cursor_tick_;
  if (last >= cursor + horizon) {
    // The wheel stalled for more than a lap: one pass over every slot
    // covers all of it, so fast-forward instead of sweeping laps.
    cursor = last - horizon + q;
  }
  size_t granted = 0;
  for (;; cursor += q) {
    uint32_t s = SlotIndexFor(cursor);
    Slot& slot = slots_[s];
    // min_deadline is a conservative lower bound, so this early-out never
    // skips a due node; it makes re-sweeps of the current quantum's slot
    // (which is never marked fully swept) O(1).
    if (!slot.entries.empty() && slot.min_deadline <= now_tick) {
      // Detach the whole slot in O(1). Mutators called from the sink
      // detect "in scratch, not linked" and defer; swapping also recycles
      // vector capacity between the slot and the scratch.
      scratch_.swap(slot.entries);
      slot.min_deadline = UINT64_MAX;
      ClearOccupied(s);
      queued_ -= scratch_.size();
      for (size_t i = 0; i < scratch_.size(); ++i) {
        if (i + kPrefetchLookahead < scratch_.size()) {
          __builtin_prefetch(&slab_.at(scratch_[i + kPrefetchLookahead]), 1);
        }
        uint32_t index = scratch_[i];
        PacedFlowNode& node = slab_.at(index);
        if (node.state == TimerNodeState::kCancelledDue) {
          // Deferred mid-drain mutation: park or free, emit nothing.
          if ((node.flags & kPacedFlowFlagIdleOnDue) != 0) {
            node.state = TimerNodeState::kPending;
            node.flags = 0;
            node.slot = kNilPacingSlot;
            node.next = kNilTimerIndex;
          } else {
            slab_.Free(index);
          }
          continue;
        }
        if (node.deadline > now_tick) {
          // Quantization never fires early: re-keep until the exact tick.
          // AttachNode: a sink callback may have re-aimed a detached node
          // past the horizon (it parks), and a freshly cascaded entry can
          // still be up to one horizon out when its aliased slot is swept.
          ++stats_.keep_requeues;
          AttachNode(index, node, now_tick);
          continue;
        }
        uint64_t grant = node.train.BurstBudget(now_tick,
                                                node.target_interval_ticks,
                                                node.max_coalesced_burst_packets);
        bool exhausted = false;
        if (node.packets_remaining != UINT32_MAX) {
          grant = std::min<uint64_t>(grant, node.packets_remaining);
          node.packets_remaining -= static_cast<uint32_t>(grant);
          exhausted = node.packets_remaining == 0;
        }
        PacedTrain::SendDecision d = node.train.OnBurstSent(
            now_tick, grant, node.target_interval_ticks,
            node.min_burst_interval_ticks);
        if (d.catch_up) {
          ++stats_.catchup_decisions;
        }
        if (grant > 1) {
          ++stats_.coalesced_bursts;
        }
        granted += grant;
        ++stats_.emits;
        stats_.packets_granted += grant;
        if (exhausted) {
          ++stats_.budget_exhausted;
          node.slot = kNilPacingSlot;
          node.next = kNilTimerIndex;
        } else {
          node.deadline = now_tick + d.next_delay_ticks;
          AttachNode(index, node, now_tick);
        }
        // Relink-then-emit: by the time the sink sees the record the flow
        // is in a normal linked/idle state, so sink callbacks mutate it
        // through the ordinary O(1) paths.
        // Amortized: batch_ capacity is bounded by max_batch (reserved in
        // the constructor) and FlushBatch clears without shrinking.
        batch_.push_back(  // lint:allow-alloc
            PacedEmit{PacedFlowId{PackTimerIdValue(index, node.generation)},
                      node.user_data, static_cast<uint32_t>(grant), exhausted});
        if (batch_.size() >= config_.max_batch) {
          FlushBatch(sink, now_tick);
        }
      }
      scratch_.clear();
    }
    if (cursor == last) {
      break;
    }
  }
  // The current quantum's slot is never marked fully swept: a node due
  // later in this same quantum (deadline > now, same slot) must be swept
  // again by the next drain.
  cursor_tick_ = last;
  FlushBatch(sink, now_tick);
  draining_ = false;
  RecomputeNextDue(now_tick + 1);
  return granted;
}

void PacingWheel::CascadeOuterSlot(uint32_t outer_index, uint64_t now_tick) {
  Slot& slot = outer_slots_[outer_index];
  if (slot.entries.empty()) {
    return;
  }
  const uint64_t horizon = horizon_ticks();
  // Detach the whole outer slot (recycling vector capacity through the
  // scratch, like the inner sweep), then re-home every entry: current-lap
  // deadlines are now within one horizon and link inner; later laps
  // re-park into the same outer slot for a future pass of the cursor.
  outer_scratch_.swap(slot.entries);
  slot.min_deadline = UINT64_MAX;
  parked_ -= outer_scratch_.size();
  for (uint32_t index : outer_scratch_) {
    PacedFlowNode& node = slab_.at(index);
    if (node.deadline < now_tick + horizon) {
      LinkNode(index, node);
      ++stats_.overflow_cascades;
    } else {
      ParkNode(index, node);
      ++stats_.overflow_reparks;
    }
  }
  outer_scratch_.clear();
}

void PacingWheel::CascadeOverflow(uint64_t now_tick) {
  if (parked_ == 0 || outer_cursor_tick_ > now_tick) {
    return;
  }
  const uint64_t horizon = horizon_ticks();
  const uint64_t outer_span = horizon * outer_slots_count_;
  if (now_tick - outer_cursor_tick_ >= outer_span) {
    // The cursor lags by a full outer lap (a long stall, or the first park
    // after an idle stretch left it far behind): one pass over every outer
    // slot covers the whole ring, so fast-forward instead of walking
    // windows one horizon at a time.
    for (uint32_t oi = 0; oi < outer_slots_count_; ++oi) {
      CascadeOuterSlot(oi, now_tick);
    }
    outer_cursor_tick_ = now_tick - (now_tick % horizon) + horizon;
    return;
  }
  while (outer_cursor_tick_ <= now_tick) {
    CascadeOuterSlot(OuterSlotIndexFor(outer_cursor_tick_), now_tick);
    outer_cursor_tick_ += horizon;
  }
}

void PacingWheel::RecomputeNextDue(uint64_t from_tick) {
  uint64_t due = UINT64_MAX;
  if (queued_ > 0) {
    // All inner deadlines lie within one horizon of from_tick (enqueues
    // past the horizon park in the overflow ring and drains fire everything
    // overdue), so the first occupied slot in circular order from
    // from_tick's slot holds the inner-wheel earliest deadline, and its
    // per-slot min is (a conservative bound on) it.
    uint32_t start = SlotIndexFor(from_tick);
    uint32_t scanned = 0;
    while (scanned < num_slots_) {
      uint32_t s = (start + scanned) & slot_mask_;
      uint64_t word = occupancy_[s >> 6] >> (s & 63);
      if (word == 0) {
        scanned += 64 - (s & 63);  // to the next word boundary
        continue;
      }
      uint32_t adv = static_cast<uint32_t>(__builtin_ctzll(word));
      scanned += adv;
      if (scanned >= num_slots_) {
        break;
      }
      due = slots_[(s + adv) & slot_mask_].min_deadline;
      break;
    }
  }
  if (parked_ > 0) {
    // The outer ring is small (a few dozen slots): a linear min over the
    // per-slot bounds folds parked deadlines into the wake-up gate, so the
    // wheel event fires in time to cascade them.
    for (const Slot& slot : outer_slots_) {
      if (slot.min_deadline < due) {
        due = slot.min_deadline;
      }
    }
  }
  next_due_tick_ = due;
}

size_t PacingWheel::TrimStorage() {
  assert(!draining_);
  for (Slot& slot : slots_) {
    if (slot.entries.empty() && slot.entries.capacity() != 0) {
      std::vector<uint32_t>().swap(slot.entries);
    }
  }
  for (Slot& slot : outer_slots_) {
    if (slot.entries.empty() && slot.entries.capacity() != 0) {
      std::vector<uint32_t>().swap(slot.entries);
    }
  }
  std::vector<uint32_t>().swap(scratch_);
  std::vector<uint32_t>().swap(outer_scratch_);
  std::vector<PacedEmit>().swap(batch_);
  // The global record resets with the storage: after a trim the workload is
  // presumed to have changed shape, so re-grown slots should not jump back
  // to the old peak.
  slot_capacity_high_water_ = config_.reserve_slot_capacity;
  return slab_.Trim();
}

}  // namespace softtimer
