#include "src/pacing/sharded_pacing.h"

#include <cassert>
#include <utility>

namespace softtimer {

ShardedPacingRuntime::ShardedPacingRuntime(ShardedSoftTimerRuntime* rt,
                                           Config config)
    : rt_(rt), config_(config) {
  assert(rt_ != nullptr);
  shards_.reserve(rt_->num_shards());
  for (size_t s = 0; s < rt_->num_shards(); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->wheel = std::make_unique<PacingWheel>(config_.wheel);
    shard->host = std::make_unique<PacingWheelHost>(
        &rt_->shard_facility(s), shard->wheel.get(), config_.handler_tag);
    shards_.push_back(std::move(shard));
  }
}

PacedFlowId ShardedPacingRuntime::AddFlowOnShard(size_t shard,
                                                 const PacedFlowConfig& config) {
  assert(shard < shards_.size());
  PacedFlowId local = shards_[shard]->host->AddFlow(config);
  return PacedFlowId{WithTimerIdShard(local.value, static_cast<uint32_t>(shard))};
}

bool ShardedPacingRuntime::Route(PacedFlowId id, size_t* shard,
                                 PacedFlowId* local) const {
  size_t s = TimerIdShard(id.value);
  if (!id.valid() || s >= shards_.size()) {
    return false;
  }
  *shard = s;
  *local = PacedFlowId{StripTimerIdShard(id.value)};
  return true;
}

bool ShardedPacingRuntime::ActivateOnShard(PacedFlowId id,
                                           uint64_t initial_delay_ticks) {
  size_t shard;
  PacedFlowId local;
  return Route(id, &shard, &local) &&
         shards_[shard]->host->Activate(local, initial_delay_ticks);
}

bool ShardedPacingRuntime::DeactivateOnShard(PacedFlowId id) {
  size_t shard;
  PacedFlowId local;
  return Route(id, &shard, &local) && shards_[shard]->host->Deactivate(local);
}

bool ShardedPacingRuntime::ReRateOnShard(PacedFlowId id,
                                         uint64_t target_interval_ticks,
                                         uint64_t min_burst_interval_ticks) {
  size_t shard;
  PacedFlowId local;
  return Route(id, &shard, &local) &&
         shards_[shard]->host->ReRate(local, target_interval_ticks,
                                      min_burst_interval_ticks);
}

bool ShardedPacingRuntime::AddBudgetOnShard(PacedFlowId id, uint32_t packets) {
  size_t shard;
  PacedFlowId local;
  return Route(id, &shard, &local) &&
         shards_[shard]->host->AddBudget(local, packets);
}

bool ShardedPacingRuntime::RemoveFlowOnShard(PacedFlowId id) {
  size_t shard;
  PacedFlowId local;
  return Route(id, &shard, &local) && shards_[shard]->host->RemoveFlow(local);
}

bool ShardedPacingRuntime::ReRateCrossCore(
    ShardedSoftTimerRuntime::ProducerToken& token, PacedFlowId id,
    uint64_t target_interval_ticks, uint64_t min_burst_interval_ticks) {
  size_t shard;
  PacedFlowId local;
  if (!Route(id, &shard, &local)) {
    return false;
  }
  PacingWheelHost* host = shards_[shard]->host.get();
  return rt_
      ->ScheduleCrossCore(
          token, shard, 0,
          [host, local, target_interval_ticks, min_burst_interval_ticks](
              const SoftTimerFacility::FireInfo&) {
            host->ReRate(local, target_interval_ticks,
                         min_burst_interval_ticks);
          },
          config_.handler_tag)
      .valid();
}

bool ShardedPacingRuntime::ActivateCrossCore(
    ShardedSoftTimerRuntime::ProducerToken& token, PacedFlowId id,
    uint64_t initial_delay_ticks) {
  size_t shard;
  PacedFlowId local;
  if (!Route(id, &shard, &local)) {
    return false;
  }
  PacingWheelHost* host = shards_[shard]->host.get();
  return rt_
      ->ScheduleCrossCore(token, shard, 0,
                          [host, local, initial_delay_ticks](
                              const SoftTimerFacility::FireInfo&) {
                            host->Activate(local, initial_delay_ticks);
                          },
                          config_.handler_tag)
      .valid();
}

bool ShardedPacingRuntime::DeactivateCrossCore(
    ShardedSoftTimerRuntime::ProducerToken& token, PacedFlowId id) {
  size_t shard;
  PacedFlowId local;
  if (!Route(id, &shard, &local)) {
    return false;
  }
  PacingWheelHost* host = shards_[shard]->host.get();
  return rt_
      ->ScheduleCrossCore(
          token, shard, 0,
          [host, local](const SoftTimerFacility::FireInfo&) {
            host->Deactivate(local);
          },
          config_.handler_tag)
      .valid();
}

bool ShardedPacingRuntime::AddBudgetCrossCore(
    ShardedSoftTimerRuntime::ProducerToken& token, PacedFlowId id,
    uint32_t packets) {
  size_t shard;
  PacedFlowId local;
  if (!Route(id, &shard, &local)) {
    return false;
  }
  PacingWheelHost* host = shards_[shard]->host.get();
  return rt_
      ->ScheduleCrossCore(token, shard, 0,
                          [host, local, packets](
                              const SoftTimerFacility::FireInfo&) {
                            host->AddBudget(local, packets);
                          },
                          config_.handler_tag)
      .valid();
}

}  // namespace softtimer
