#include "src/pacing/pacing_wheel_host.h"

#include <algorithm>
#include <cassert>

namespace softtimer {

PacingWheelHost::PacingWheelHost(SoftTimerFacility* facility, PacingWheel* wheel,
                                 uint32_t handler_tag)
    : facility_(facility), wheel_(wheel), handler_tag_(handler_tag) {
  assert(facility_ != nullptr && wheel_ != nullptr);
}

PacingWheelHost::~PacingWheelHost() { Disarm(); }

void PacingWheelHost::Disarm() {
  if (armed_.valid()) {
    facility_->CancelSoftEvent(armed_);
    armed_ = SoftEventId{};
    armed_for_ = UINT64_MAX;
  }
}

void PacingWheelHost::OnWheelEvent(const SoftTimerFacility::FireInfo& info) {
  // The dispatched event consumed itself; forget it before draining so a
  // sink-triggered Rearm schedules fresh instead of cancelling a dead id.
  armed_ = SoftEventId{};
  armed_for_ = UINT64_MAX;
  ++stats_.wheel_events;
  // fired_tick is the facility's amortized per-drain-batch clock read: the
  // whole wheel drain (and every other event in the same facility batch)
  // runs off one clock access.
  DrainNow(info.fired_tick);
}

size_t PacingWheelHost::DrainNow(uint64_t now_tick) {
  size_t granted = wheel_->Drain(now_tick, sink_);
  stats_.packets_granted += granted;
  AdaptBatch();
  Rearm(now_tick);
  return granted;
}

void PacingWheelHost::AdaptBatch() {
  if (!batch_adapt_.achieved_quota) {
    return;
  }
  double quota = batch_adapt_.achieved_quota();
  if (quota < 0.0) {
    quota = 0.0;
  }
  auto target = static_cast<size_t>(quota * batch_adapt_.gain + 0.5);
  target = std::clamp(target, batch_adapt_.min_batch, batch_adapt_.max_batch);
  if (target != wheel_->max_batch()) {
    wheel_->set_max_batch(target);
    ++stats_.batch_retunes;
  }
}

void PacingWheelHost::Rearm(uint64_t now_tick) {
  uint64_t due = wheel_->next_due_tick();
  if (due == UINT64_MAX) {
    Disarm();
    return;
  }
  if (armed_.valid()) {
    if (armed_for_ <= due) {
      return;  // already fires early enough; spurious drains are gated O(1)
    }
    facility_->CancelSoftEvent(armed_);
  }
  // The facility fires at schedule_tick + delta + 1; aim that at `due`
  // exactly (delta = due - now - 1), so the event dispatches at the first
  // trigger state or backup interrupt at or past the wheel's earliest
  // deadline — never early, late by at most the paper's X + 1.
  uint64_t delta = due > now_tick + 1 ? due - now_tick - 1 : 0;
  armed_ = facility_->ScheduleSoftEvent(
      delta,
      [this](const SoftTimerFacility::FireInfo& info) { OnWheelEvent(info); },
      handler_tag_);
  armed_for_ = due;
  ++stats_.rearms;
}

bool PacingWheelHost::Activate(PacedFlowId id, uint64_t initial_delay_ticks) {
  uint64_t now = facility_->MeasureTime();
  if (!wheel_->Activate(id, now, initial_delay_ticks)) {
    return false;
  }
  Rearm(now);
  return true;
}

bool PacingWheelHost::ReRate(PacedFlowId id, uint64_t target_interval_ticks,
                             uint64_t min_burst_interval_ticks) {
  uint64_t now = facility_->MeasureTime();
  if (!wheel_->ReRate(id, now, target_interval_ticks,
                      min_burst_interval_ticks)) {
    return false;
  }
  Rearm(now);
  return true;
}

bool PacingWheelHost::AddBudget(PacedFlowId id, uint32_t packets) {
  uint64_t now = facility_->MeasureTime();
  if (!wheel_->AddBudget(id, now, packets)) {
    return false;
  }
  Rearm(now);
  return true;
}

size_t PacingWheelHost::Poll() {
  ++stats_.polls;
  uint64_t due = wheel_->next_due_tick();
  if (due == UINT64_MAX) {
    return 0;
  }
  uint64_t now = facility_->MeasureTime();
  if (now < due) {
    return 0;
  }
  ++stats_.poll_drains;
  return DrainNow(now);
}

}  // namespace softtimer
