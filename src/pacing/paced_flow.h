// Paced-flow node and batch-emission types for the pacing wheel
// (src/pacing/pacing_wheel.h).
//
// A PacedFlowNode is the wheel's unit of state: one flow's pacing train
// (PacedTrain, src/core/adaptive_pacer.h) plus its wheel linkage, stored in
// a TimerSlab so a million flows cost a million nodes and zero steady-state
// allocations. Ids are the slab's generation-counted PackTimerIdValue
// encoding (shard byte optionally ORed in by ShardedPacingRuntime), so a
// stale PacedFlowId cancels nobody.

#ifndef SOFTTIMER_SRC_PACING_PACED_FLOW_H_
#define SOFTTIMER_SRC_PACING_PACED_FLOW_H_

#include <cstdint>

#include "src/core/adaptive_pacer.h"
#include "src/timer/timer_slab.h"

namespace softtimer {

// Identifies one flow registered with a PacingWheel (or, with a shard byte,
// with a ShardedPacingRuntime). Default-constructed ids are invalid.
struct PacedFlowId {
  uint64_t value = 0;
  bool valid() const { return value != 0; }
};

// Per-flow pacing parameters, in measurement-clock ticks.
struct PacedFlowConfig {
  // Desired average inter-packet interval. Intervals longer than the inner
  // horizon are legal: deadlines past `quantum * num_slots` park in the
  // wheel's hierarchical overflow ring (Stats::overflow_parks) and cascade
  // into the inner wheel one lap ahead, so sub-horizon rates never fire
  // early and are never clamped. Capped at 2^32 - 1 ticks (the node's
  // 32-bit interval field).
  uint64_t target_interval_ticks = 0;
  // Smallest interval the catch-up branch may schedule (the maximal
  // allowable burst rate). Must be >= 1 and <= target.
  uint64_t min_burst_interval_ticks = 0;
  // Cap on packets granted to one wakeup when the flow is behind schedule
  // (PacedTrain::BurstBudget); <= 1 disables coalescing.
  uint32_t max_coalesced_burst_packets = 0;
  // Total packets the flow may emit before the wheel auto-idles it;
  // 0 = unlimited. Emission grants never exceed the remainder.
  uint32_t packet_budget = 0;
  // Opaque caller word handed back verbatim in every PacedEmit for this
  // flow (typically a pointer to the flow's transport object).
  uint64_t user_data = 0;
};

// One flow's due notification inside a drain batch: the sink may transmit
// up to `packets` back-to-back packets for the flow right now.
struct PacedEmit {
  PacedFlowId flow;
  uint64_t user_data;  // PacedFlowConfig::user_data
  uint32_t packets;    // coalesced-burst grant (>= 1)
  bool budget_exhausted;  // flow auto-idled: packet_budget just hit zero
};

// Flag bits in PacedFlowNode::flags.
inline constexpr uint8_t kPacedFlowFlagIdleOnDue = 1u << 0;

// Sentinel for "not linked into any slot".
inline constexpr uint32_t kNilPacingSlot = 0xFFFFFFFFu;

// A node whose `slot` field is >= this base is parked in the wheel's
// hierarchical overflow ring: `slot - kOuterPacingSlotBase` is the outer
// slot index, `next` its position in that slot's entry vector (same
// swap-remove linkage as inner slots). Inner slot indices stay below
// 2^31, and the base plus any outer index stays below kNilPacingSlot.
inline constexpr uint32_t kOuterPacingSlotBase = 0x80000000u;

// The slab node. 64 bytes: one cache line per flow on the drain path.
//
// Linkage design (measured, see DESIGN.md §10): slots hold *dense vectors
// of node indices*, not intrusive lists — a serial pointer chase over
// slab-scattered 64B nodes costs ~188 ns/node at 1M nodes on this class of
// hardware versus ~19 ns for an index sweep with prefetch. `next` is
// reused as the node's position inside its slot vector while queued
// (making unlink O(1) via swap-remove), and as the slab free-list link
// while free.
struct PacedFlowNode {
  // --- TimerSlab contract fields ---
  uint32_t generation = 1;
  uint32_t next = kNilTimerIndex;  // free-list link / position in slot vector
  TimerNodeState state = TimerNodeState::kFree;
  uint8_t flags = 0;
  uint16_t reserved = 0;
  // --- wheel linkage ---
  uint32_t slot = kNilPacingSlot;  // owning slot index; kNilPacingSlot = idle
  uint64_t deadline = 0;           // absolute next-due tick while queued
  // --- pacing state ---
  PacedTrain train;                   // {start_tick, packets}: 16 bytes
  uint32_t target_interval_ticks = 0;  // intervals capped at 2^32 - 1
  uint32_t min_burst_interval_ticks = 0;
  uint32_t max_coalesced_burst_packets = 0;
  uint32_t packets_remaining = 0;  // 0 = unlimited (mirrors packet_budget)
  uint64_t user_data = 0;
};
static_assert(sizeof(PacedFlowNode) == 64, "one cache line per flow");

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_PACING_PACED_FLOW_H_
