// PacingWheel: a timestamp-bucketed pacing wheel for very large flow
// counts (Carousel-style; see PAPERS.md on grouped-deadline timer
// management and batched retrieval).
//
// The rate-based clocking design of Section 4.1 spends one soft-timer
// event and one ScheduleSoftEvent per flow per packet, so pacing cost grows
// linearly with flow count. The wheel inverts that: flows are bucketed by
// next-transmission deadline into fixed-width slots (the pacer quantum,
// typically 1-16 us of measurement ticks), and ONE soft-timer event drives
// the whole wheel. On fire the caller reads the clock once, Drain() sweeps
// every slot <= now, and all due flows are emitted as a batch (PacedEmit
// records handed to a BatchSink), so the per-packet cost collapses to a
// slot-vector append plus a burst append.
//
// Semantics:
//  * Per-flow pacing decisions are exactly AdaptivePacer's (the shared
//    PacedTrain arithmetic): target interval normally, min-burst interval
//    when the train is behind schedule, bounded coalesced bursts at stale
//    wakeups.
//  * Slot quantization never fires a flow early: each node carries its
//    exact deadline and a drained slot re-keeps nodes whose deadline is
//    still in the future. Lateness is bounded by the driving event's
//    dispatch bound (the facility's T < actual < T + X + 1; the backup
//    interrupt enforces the high side), not by the quantum.
//  * Deadlines farther than one horizon (quantum * num_slots) park in a
//    hierarchical overflow ring (mirroring src/timer/hierarchical wheel
//    cascading): a coarse outer ring whose slots each span one inner
//    horizon. When the drain cursor enters an outer window, its entries
//    cascade into the inner wheel (they are then at most one lap out) and
//    later-lap entries re-park. Parked deadlines are never clamped and
//    never fire early; Stats::overflow_parks / overflow_cascades /
//    overflow_reparks count the traffic and Stats::horizon_clamps stays 0.
//  * Steady state allocates nothing: nodes live in a TimerSlab, slot
//    vectors and the emit batch grow to the workload high-water mark and
//    are reused.
//
// Reentrancy: BatchSink callbacks may call back into the wheel (Activate /
// Deactivate / ReRate / Cancel / AddFlow) for any flow, including ones in
// the batch being flushed. Nodes being drained are detached into a scratch
// vector; mutators detect "not currently linked" and defer the operation
// via node state instead of corrupting the sweep.
//
// Single-threaded by design, like the facility: one wheel per shard, all
// calls from the shard's owner thread (cross-core mutation goes through
// ShardedPacingRuntime's command rings).

#ifndef SOFTTIMER_SRC_PACING_PACING_WHEEL_H_
#define SOFTTIMER_SRC_PACING_PACING_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/pacing/paced_flow.h"
#include "src/timer/timer_slab.h"

namespace softtimer {

class PacingWheel {
 public:
  struct Config {
    // Slot width in measurement-clock ticks (the pacing quantum). All flows
    // due within the same quantum share a slot and are emitted in one batch.
    uint64_t quantum_ticks = 8;
    // Number of slots; rounded up to a power of two. Horizon (the farthest
    // representable deadline) is quantum_ticks * num_slots.
    uint32_t num_slots = 4096;
    // Emit-batch flush threshold: Drain hands the sink at most this many
    // PacedEmit records per OnPacedBatch call.
    size_t max_batch = 256;
    // Entries pre-reserved in EVERY slot vector (plus the drain scratch and
    // the emit batch) at construction. Default 0: slot vectors grow lazily
    // to the workload high-water mark, which is the right trade at large
    // scale (1M flows x 4096 slots cannot pre-reserve worst case). Set to
    // the active-flow count for a PROVABLE zero-allocation steady state:
    // re-rates and catch-up drains can momentarily pile every flow into one
    // slot, and the slot that gets hit changes with absolute time, so lazy
    // growth keeps finding fresh vectors to ratchet. Costs
    // 4 * num_slots * reserve bytes up front.
    uint32_t reserve_slot_capacity = 0;
    // Outer overflow-ring slots; rounded up to a power of two (min 2).
    // Each outer slot spans one inner horizon, so the ring covers
    // overflow_slots * quantum_ticks * num_slots ticks before deadlines
    // wrap onto a later lap (re-parked at cascade time, still exact).
    uint32_t overflow_slots = 64;
  };

  // Receives drain batches. `now_tick` is the (single, amortized) clock
  // read the drain ran under.
  class BatchSink {
   public:
    virtual ~BatchSink() = default;
    virtual void OnPacedBatch(const PacedEmit* batch, size_t count,
                              uint64_t now_tick) = 0;
  };

  explicit PacingWheel(Config config);

  // --- flow registry (control plane) -----------------------------------
  // Registers a flow (idle: not yet scheduled). O(1); allocates only when
  // the slab grows past its high-water mark.
  PacedFlowId AddFlow(const PacedFlowConfig& config);

  // Unregisters a flow in any state. False for stale ids.
  bool RemoveFlow(PacedFlowId id);

  // --- scheduling (hot path, all O(1)) ----------------------------------
  // Starts (or restarts) the flow's packet train at now_tick and queues its
  // first emission at now_tick + initial_delay_ticks (+1 for the schedule
  // not being tick-aligned, mirroring the facility). Staggering
  // initial_delay across flows avoids synchronized slot convoys. False for
  // stale ids; re-activating an already-queued flow relinks it.
  bool Activate(PacedFlowId id, uint64_t now_tick,
                uint64_t initial_delay_ticks = 0);

  // Unlinks the flow from the wheel but keeps it registered (idle). False
  // for stale ids; true (idempotent success) if already idle.
  bool Deactivate(PacedFlowId id);

  // Replaces the flow's target/min-burst intervals and restarts its train
  // at now_tick, relinking its pending emission accordingly. The flow must
  // be active for the relink to take effect immediately; an idle flow just
  // gets the new rate on its next Activate. False for stale ids.
  bool ReRate(PacedFlowId id, uint64_t now_tick, uint64_t target_interval_ticks,
              uint64_t min_burst_interval_ticks);

  // Grants the flow `packets` more budget (no-op for unlimited flows) and
  // reactivates it if it auto-idled on budget exhaustion. False for stale
  // ids.
  bool AddBudget(PacedFlowId id, uint64_t now_tick, uint32_t packets);

  // --- draining ---------------------------------------------------------
  // Sweeps every slot whose ticks are <= now_tick, emits due flows to
  // `sink` in batches, and re-buckets each emitted flow at its next
  // deadline. Returns total packets granted. One clock read per drain: the
  // caller passes `now_tick` (typically FireInfo::fired_tick); the wheel
  // never reads a clock.
  size_t Drain(uint64_t now_tick, BatchSink* sink);

  // --- introspection ----------------------------------------------------
  // Earliest pending deadline (absolute tick), or UINT64_MAX when no flow
  // is queued. Conservative (never later than the true earliest): the
  // wheel-event host arms the facility from this.
  uint64_t next_due_tick() const { return next_due_tick_; }

  uint64_t quantum_ticks() const { return config_.quantum_ticks; }
  uint64_t horizon_ticks() const { return config_.quantum_ticks * num_slots_; }
  uint32_t num_slots() const { return num_slots_; }

  // Retunes the emit-batch flush threshold at runtime (floor 1). This is
  // the governor->pacer coupling point: PacingWheelHost feeds the poll
  // governor's achieved aggregation quota here so the emit batch size
  // adapts to load exactly like the poll interval does. Growing the
  // threshold re-reserves batch_ immediately (an allocation - call from
  // control paths, not mid-drain); shrinking never releases capacity.
  void set_max_batch(size_t max_batch);
  size_t max_batch() const { return config_.max_batch; }

  bool contains(PacedFlowId id) const { return slab_.IsCurrent(id.value); }
  // True when the flow is registered and currently queued on the wheel.
  bool active(PacedFlowId id) const;

  size_t live_flows() const { return slab_.stats().live; }
  // Flows currently scheduled (inner wheel + overflow ring).
  size_t queued_flows() const { return queued_ + parked_; }
  // Flows currently parked in the overflow ring.
  size_t parked_flows() const { return parked_; }
  uint32_t overflow_slots() const { return outer_slots_count_; }

  TimerSlabStats slab_stats() const { return slab_.stats(); }
  // Releases fully-free slab chunks + excess slot/scratch capacity.
  size_t TrimStorage();

  struct Stats {
    uint64_t activations = 0;
    uint64_t deactivations = 0;    // explicit Deactivate calls that unlinked
    uint64_t re_rates = 0;
    uint64_t drains = 0;           // Drain calls that swept at least a slot
    uint64_t spurious_drains = 0;  // Drain calls gated out (nothing due)
    uint64_t emits = 0;            // PacedEmit records produced
    uint64_t packets_granted = 0;  // sum of grants over all emits
    uint64_t coalesced_bursts = 0; // emits granting > 1 packet
    uint64_t catchup_decisions = 0;  // re-buckets on the min-burst branch
    uint64_t keep_requeues = 0;    // swept nodes not yet due (quantization)
    // Always 0 since the overflow ring landed (far deadlines park instead
    // of clamping); retained so dashboards can assert the absence.
    uint64_t horizon_clamps = 0;
    uint64_t overflow_parks = 0;     // deadlines parked in the outer ring
    uint64_t overflow_cascades = 0;  // parked nodes moved into the inner wheel
    uint64_t overflow_reparks = 0;   // later-lap nodes re-parked at cascade
    uint64_t batch_flushes = 0;    // OnPacedBatch calls
    uint64_t budget_exhausted = 0; // flows auto-idled by packet budget
    uint64_t deferred_cancels = 0; // mutations deferred mid-drain
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  struct Slot {
    std::vector<uint32_t> entries;  // node indices, unordered
    // Conservative lower bound on the earliest deadline linked here (exact
    // after every full sweep; may lag low after an unlink, costing at most
    // one early wake).
    uint64_t min_deadline = UINT64_MAX;
  };

  uint32_t SlotIndexFor(uint64_t tick) const {
    return static_cast<uint32_t>(tick / config_.quantum_ticks) & slot_mask_;
  }

  uint32_t OuterSlotIndexFor(uint64_t tick) const {
    return static_cast<uint32_t>(tick / horizon_ticks()) & outer_mask_;
  }

  // Grows a slot's entry vector when an append finds it at capacity.
  // Factored out of the link paths so the hot-closure analyzer sees the
  // growth behind one SOFTTIMER_COLD boundary (see the definition).
  void GrowSlotEntries(Slot& slot);
  // Links node `index` (with node.deadline set) into its inner slot.
  void LinkNode(uint32_t index, PacedFlowNode& node);
  // O(1) swap-remove unlink. Only call when IsLinked.
  void UnlinkNode(uint32_t index, PacedFlowNode& node);
  // True when the node is genuinely inside an inner slot vector (as opposed
  // to detached into the drain scratch, parked, or idle).
  bool IsLinked(uint32_t index, const PacedFlowNode& node) const;

  // True when the node is parked in the overflow ring. Parked nodes are
  // always physically linked (the cascade runs before any sink callback,
  // so mutators never observe a node detached from the outer ring).
  bool IsParked(const PacedFlowNode& node) const {
    return node.slot != kNilPacingSlot && node.slot >= kOuterPacingSlotBase;
  }

  // Parks node `index` (with node.deadline set) in the outer ring.
  void ParkNode(uint32_t index, PacedFlowNode& node);
  // O(1) swap-remove from the outer ring. Only call when IsParked.
  void UnlinkParked(uint32_t index, PacedFlowNode& node);

  // Routes a node with deadline set relative to now_tick: inner wheel when
  // the delay fits the horizon, overflow ring otherwise.
  void AttachNode(uint32_t index, PacedFlowNode& node, uint64_t now_tick);

  // Moves every due outer window's entries into the inner wheel (re-parking
  // later-lap entries). Runs at the top of Drain, before any sink callback.
  void CascadeOverflow(uint64_t now_tick);
  void CascadeOuterSlot(uint32_t outer_index, uint64_t now_tick);

  // Recomputes next_due_tick_ by scanning the occupancy bitmap circularly
  // from the slot covering `from_tick`.
  void RecomputeNextDue(uint64_t from_tick);

  void MarkOccupied(uint32_t slot_index) {
    occupancy_[slot_index >> 6] |= 1ull << (slot_index & 63);
  }
  void ClearOccupied(uint32_t slot_index) {
    occupancy_[slot_index >> 6] &= ~(1ull << (slot_index & 63));
  }

  void FlushBatch(BatchSink* sink, uint64_t now_tick);

  Config config_;
  uint32_t num_slots_ = 0;  // power of two
  uint32_t slot_mask_ = 0;
  uint32_t outer_slots_count_ = 0;  // power of two
  uint32_t outer_mask_ = 0;
  TimerSlab<PacedFlowNode> slab_;
  std::vector<Slot> slots_;
  // Overflow ring: outer slot i holds nodes whose deadline / horizon is
  // congruent to i (mod outer_slots_count_). min_deadline has the same
  // conservative semantics as inner slots.
  std::vector<Slot> outer_slots_;
  std::vector<uint64_t> occupancy_;  // one bit per slot
  // Detached entries of the slot being swept (drain scratch; reused).
  std::vector<uint32_t> scratch_;
  // Detached entries of the outer slot being cascaded (reused).
  std::vector<uint32_t> outer_scratch_;
  std::vector<PacedEmit> batch_;
  // Largest capacity any slot vector has reached. A slot that must grow
  // jumps straight here: slot vectors are interchangeable buffers (drain
  // swaps them through scratch_), so making each of the num_slots_ vectors
  // rediscover the same occupancy peak via its own geometric growth would
  // ratchet allocations for the lifetime of the process. With the jump,
  // steady state allocates only when the GLOBAL occupancy record is broken.
  uint32_t slot_capacity_high_water_ = 0;
  size_t queued_ = 0;  // inner-wheel linked nodes
  size_t parked_ = 0;  // overflow-ring linked nodes
  uint64_t next_due_tick_ = UINT64_MAX;
  // Start tick of the next outer window the cascade has not yet processed
  // (horizon-aligned). Window W = [k*H, (k+1)*H) is processed once the
  // drain clock reaches W's start: every current-lap entry is then within
  // one horizon and cascades; later laps re-park.
  uint64_t outer_cursor_tick_ = 0;
  // Quantum-aligned tick of the first slot the next sweep starts from. The
  // current quantum's slot is deliberately never marked fully swept (a node
  // due later in the same quantum must be revisited), so this trails
  // align_down(now) of the latest drain.
  uint64_t cursor_tick_ = 0;
  bool draining_ = false;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_PACING_PACING_WHEEL_H_
