// PacingWheelHost: drives one PacingWheel from one SoftTimerFacility soft
// event.
//
// This is the piece that turns "a million per-flow soft events" into "one
// soft event per shard": the host keeps a single event armed at the wheel's
// earliest pending deadline. When any trigger state (or the backup
// interrupt) dispatches it, the handler drains the wheel under the
// facility's amortized batch clock read (FireInfo::fired_tick) — one clock
// access for the whole drain — and re-arms at the new earliest deadline.
//
// Timing bound: the armed event inherits the facility's dispatch bound
// T < actual < T + X + 1, with the backup interrupt enforcing the high
// side. The wheel itself never fires early (per-node deadline checks), so
// every flow's emission lands within (deadline, deadline + X + 1) — the
// paper's bound, now at wheel granularity instead of per-flow-event
// granularity.
//
// Poll() is the opportunistic variant for busy-poll hosts: a cheap
// nothing-due gate (one compare against the wheel's cached earliest, then
// one clock read) that drains ahead of the armed event when work is due.
//
// Single-threaded, like the facility and the wheel: one host per shard.

#ifndef SOFTTIMER_SRC_PACING_PACING_WHEEL_HOST_H_
#define SOFTTIMER_SRC_PACING_PACING_WHEEL_HOST_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "src/core/soft_timer_facility.h"
#include "src/pacing/pacing_wheel.h"

namespace softtimer {

class PacingWheelHost {
 public:
  // `handler_tag` names the wheel event's handler class to the facility
  // (degradation budgets; 0 = anonymous). The host does not own its wheel
  // or facility.
  PacingWheelHost(SoftTimerFacility* facility, PacingWheel* wheel,
                  uint32_t handler_tag = 0);
  ~PacingWheelHost();

  PacingWheelHost(const PacingWheelHost&) = delete;
  PacingWheelHost& operator=(const PacingWheelHost&) = delete;

  // The sink every drain emits to. Must outlive the host (or be reset).
  void set_sink(PacingWheel::BatchSink* sink) { sink_ = sink; }

  // Governor->pacer coupling (ISSUE/ROADMAP "load-adaptive emit batching"):
  // when configured, every drain re-targets the wheel's max_batch from the
  // poll governor's achieved aggregation quota (packets found per poll,
  // e.g. MultiQueuePoller::achieved_quota or PollGovernor::found_ewma via a
  // lambda). target = clamp(round(quota * gain), min_batch, max_batch) -
  // heavy load (big quotas) flushes in big batches for amortization, light
  // load flushes small for latency, tracking load exactly like the poll
  // interval does.
  struct BatchAdapt {
    std::function<double()> achieved_quota;  // required to enable
    size_t min_batch = 1;
    size_t max_batch = 256;
    double gain = 4.0;  // emit-batch packets per unit of achieved quota
  };
  void set_batch_adapt(BatchAdapt adapt) { batch_adapt_ = std::move(adapt); }

  PacingWheel* wheel() { return wheel_; }
  SoftTimerFacility* facility() { return facility_; }

  // --- wheel passthroughs that keep the armed event tracking the wheel ---
  PacedFlowId AddFlow(const PacedFlowConfig& config) {
    return wheel_->AddFlow(config);
  }
  bool RemoveFlow(PacedFlowId id) { return wheel_->RemoveFlow(id); }
  bool Activate(PacedFlowId id, uint64_t initial_delay_ticks = 0);
  bool Deactivate(PacedFlowId id) { return wheel_->Deactivate(id); }
  bool ReRate(PacedFlowId id, uint64_t target_interval_ticks,
              uint64_t min_burst_interval_ticks);
  bool AddBudget(PacedFlowId id, uint32_t packets);

  // Opportunistic drain for busy-poll hosts: one compare when nothing is
  // due. Returns packets granted.
  size_t Poll();

  // Cancels the armed event (e.g. before tearing down the wheel).
  void Disarm();

  struct Stats {
    uint64_t wheel_events = 0;  // armed-event dispatches
    uint64_t polls = 0;
    uint64_t poll_drains = 0;   // polls that found due work
    uint64_t packets_granted = 0;
    uint64_t rearms = 0;        // soft events scheduled
    uint64_t batch_retunes = 0; // drains that changed the wheel's max_batch
  };
  const Stats& stats() const { return stats_; }

 private:
  void OnWheelEvent(const SoftTimerFacility::FireInfo& info);
  // Drains at `now_tick` and re-arms; returns packets granted.
  size_t DrainNow(uint64_t now_tick);
  // Applies BatchAdapt (if configured) to the wheel's max_batch.
  void AdaptBatch();
  // Ensures the armed event fires no later than the wheel's earliest
  // deadline (cancelling/rescheduling only when it would fire too late).
  void Rearm(uint64_t now_tick);

  SoftTimerFacility* facility_;
  PacingWheel* wheel_;
  PacingWheel::BatchSink* sink_ = nullptr;
  uint32_t handler_tag_;
  SoftEventId armed_;
  // Tick the armed event is guaranteed to have fired by (its wheel target);
  // UINT64_MAX when nothing is armed.
  uint64_t armed_for_ = UINT64_MAX;
  BatchAdapt batch_adapt_;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_PACING_PACING_WHEEL_HOST_H_
