#include "src/appsim/media_player_model.h"

namespace softtimer {

MediaPlayerModel::MediaPlayerModel(Kernel* kernel, Config config)
    : kernel_(kernel), config_(config), rng_(config.rng_seed) {}

void MediaPlayerModel::Start() {
  DecodeUnit();
  ScheduleStreamPacket();
  ScheduleAudioInterrupt();
}

void MediaPlayerModel::DecodeUnit() {
  ++stats_.decode_units;
  // Occasional soft fault on lazily-paged codec data.
  if (rng_.Bernoulli(config_.trap_probability)) {
    kernel_->KernelOp(TriggerSource::kTrap,
                      rng_.LogNormalDuration(SimDuration::Micros(4), 0.5),
                      [this] { DecodeUnit(); });
    return;
  }
  // The bracketing syscall: A/V clock reads, non-blocking socket polls, and
  // periodically the audio-device write.
  bool audio_write = (stats_.decode_units %
                      static_cast<uint64_t>(config_.syscalls_per_audio_write)) == 0;
  SimDuration syscall = rng_.LogNormalDuration(
      audio_write ? config_.audio_write_median : config_.syscall_median,
      config_.syscall_sigma);
  kernel_->KernelOp(TriggerSource::kSyscall, syscall, [this] {
    // User-mode decode stretch: pure compute, no kernel entry.
    SimDuration decode = rng_.LogNormalDuration(config_.decode_median, config_.decode_sigma);
    if (decode > config_.decode_cap) {
      decode = config_.decode_cap;
    }
    kernel_->cpu(0).Submit(kernel_->profile().Work(decode), [this] { DecodeUnit(); });
  });
}

void MediaPlayerModel::ScheduleStreamPacket() {
  kernel_->sim()->ScheduleAfter(rng_.ExpDuration(config_.stream_packet_interval), [this] {
    ++stats_.stream_packets;
    kernel_->RaiseInterrupt(TriggerSource::kIpIntr, config_.stream_rx_work);
    ScheduleStreamPacket();
  });
}

void MediaPlayerModel::ScheduleAudioInterrupt() {
  kernel_->sim()->ScheduleAfter(config_.audio_buffer_period, [this] {
    ++stats_.audio_interrupts;
    kernel_->RaiseInterrupt(TriggerSource::kOtherIntr, config_.audio_intr_work);
    ScheduleAudioInterrupt();
  });
}

}  // namespace softtimer
