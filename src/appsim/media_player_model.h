// Media-player model: the mechanistic substrate for the ST-real-audio
// workload of Table 1.
//
//   "The RealPlayer was included because it is an example of an application
//    that saturates the CPU. Despite the fact that this workload performs
//    mostly user-mode processing and generates a relatively low rate of
//    interrupts, it yields a distribution of trigger state intervals with
//    very low mean, due to the many system calls that RealPlayer performs."
//
// The model is a decode pipeline: stream packets arrive from the network at
// a modest rate (a live audio source); the player loops over small decode
// units, each a user-mode compute burst bracketed by the short syscalls a
// 1999 player issued constantly (gettimeofday for A/V clocking, non-blocking
// socket reads, audio-device writes/ioctls). The sound card raises a buffer
// interrupt at its period. Decode work is sized to saturate the CPU, as in
// the paper.

#ifndef SOFTTIMER_SRC_APPSIM_MEDIA_PLAYER_MODEL_H_
#define SOFTTIMER_SRC_APPSIM_MEDIA_PLAYER_MODEL_H_

#include "src/machine/kernel.h"
#include "src/sim/random.h"

namespace softtimer {

class MediaPlayerModel {
 public:
  struct Config {
    // Incoming audio stream (RealAudio-era: small packets, low rate).
    SimDuration stream_packet_interval = SimDuration::Millis(8);
    SimDuration stream_rx_work = SimDuration::Micros(10);
    // Sound-card buffer interrupt period.
    SimDuration audio_buffer_period = SimDuration::Millis(12);
    SimDuration audio_intr_work = SimDuration::Micros(8);
    // Decode unit structure: a short syscall (clocking/reads/writes) then a
    // user-mode compute stretch, log-normal jittered.
    SimDuration syscall_median = SimDuration::Micros(3.4);
    double syscall_sigma = 0.55;
    // One in `syscalls_per_audio_write` decode units ends in an audio-device
    // write (slightly longer syscall).
    int syscalls_per_audio_write = 6;
    SimDuration audio_write_median = SimDuration::Micros(6);
    // The compute stretch between kernel entries.
    SimDuration decode_median = SimDuration::Micros(2.0);
    double decode_sigma = 1.35;
    SimDuration decode_cap = SimDuration::Micros(400);
    // Fraction of decode units that begin with a soft page fault (codec
    // tables paged in lazily).
    double trap_probability = 0.05;
    uint64_t rng_seed = 41;
  };

  MediaPlayerModel(Kernel* kernel, Config config);

  void Start();

  struct Stats {
    uint64_t decode_units = 0;
    uint64_t stream_packets = 0;
    uint64_t audio_interrupts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void DecodeUnit();
  void ScheduleStreamPacket();
  void ScheduleAudioInterrupt();

  Kernel* kernel_;
  Config config_;
  Rng rng_;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_APPSIM_MEDIA_PLAYER_MODEL_H_
