#include "src/appsim/compile_job_model.h"

#include <utility>

namespace softtimer {

CompileJobModel::CompileJobModel(Kernel* kernel, Config config)
    : kernel_(kernel), config_(config), rng_(config.rng_seed),
      disk_(kernel->sim(), config.disk) {}

void CompileJobModel::Start() { StartJob(); }

void CompileJobModel::StartJob() {
  ++stats_.jobs;
  // fork/exec: syscall + page-fault storm.
  RunStorm(config_.exec_storm_ops, [this] { ReadSource([this] { RunPhase(config_.phases_per_job); }); });
}

void CompileJobModel::RunStorm(int remaining, std::function<void()> next) {
  if (remaining <= 0) {
    next();
    return;
  }
  TriggerSource src = rng_.Bernoulli(config_.storm_trap_fraction) ? TriggerSource::kTrap
                                                                  : TriggerSource::kSyscall;
  SimDuration cost = rng_.LogNormalDuration(config_.storm_op_median, config_.storm_op_sigma);
  kernel_->KernelOp(src, cost, [this, remaining, next = std::move(next)]() mutable {
    RunStorm(remaining - 1, std::move(next));
  });
}

void CompileJobModel::ReadSource(std::function<void()> next) {
  // open + read syscalls; a cache miss goes to the platter.
  kernel_->KernelOp(TriggerSource::kSyscall, rng_.LogNormalDuration(SimDuration::Micros(3), 0.4),
                    [this, next = std::move(next)]() mutable {
    if (rng_.Bernoulli(config_.source_readahead)) {
      // Readahead already in flight: the disk works while compilation
      // proceeds; only the completion interrupt touches the CPU.
      ++stats_.disk_reads;
      disk_.SubmitRead(config_.source_bytes, [this] {
        kernel_->RaiseInterrupt(TriggerSource::kOtherIntr, SimDuration::Micros(11));
      });
      next();
      return;
    }
    if (!rng_.Bernoulli(config_.source_cache_miss)) {
      next();
      return;
    }
    // Rare blocking miss: the CPU idles until the platter answers.
    ++stats_.disk_reads;
    disk_.SubmitRead(config_.source_bytes, [this, next = std::move(next)]() mutable {
      kernel_->RaiseInterrupt(TriggerSource::kOtherIntr, SimDuration::Micros(11));
      kernel_->KernelOp(TriggerSource::kSyscall,
                        rng_.LogNormalDuration(SimDuration::Micros(12), 0.4),
                        std::move(next));
    });
  });
}

void CompileJobModel::RunPhase(int remaining) {
  if (remaining <= 0) {
    WriteObject();
    return;
  }
  // The compute run: parsing/optimizing, heavy-tailed, no kernel entry.
  SimDuration compute = rng_.LogNormalDuration(config_.compute_median, config_.compute_sigma);
  if (compute > config_.compute_cap) {
    compute = config_.compute_cap;
  }
  kernel_->cpu(0).Submit(kernel_->profile().Work(compute), [this, remaining] {
    // Then a short burst of syscalls/faults.
    RunStorm(config_.burst_ops, [this, remaining] { RunPhase(remaining - 1); });
  });
}

void CompileJobModel::WriteObject() {
  kernel_->KernelOp(TriggerSource::kSyscall, rng_.LogNormalDuration(SimDuration::Micros(8), 0.5),
                    [this] {
    // The buffer cache absorbs the object; write-back hits the platter in
    // batches, asynchronously, while the next job already runs.
    if (stats_.jobs % static_cast<uint64_t>(config_.jobs_per_writeback) == 0) {
      ++stats_.disk_writes;
      disk_.SubmitWrite(config_.object_bytes * static_cast<uint32_t>(config_.jobs_per_writeback),
                        [this] {
        kernel_->RaiseInterrupt(TriggerSource::kOtherIntr, SimDuration::Micros(9));
      });
    }
    StartJob();
  });
}

}  // namespace softtimer
