// Kernel-build model: the mechanistic substrate for the ST-kernel-build
// workload of Table 1 ("extensive computation (compilation, etc.) as well as
// disk I/O").
//
// A `make`-style driver runs compile jobs back to back. Each job:
//   1. fork/exec - a storm of short syscalls and page faults as the
//      compiler's image and its first pages come in;
//   2. reads its source through the buffer cache, sometimes missing to disk
//      (DiskModel read + completion interrupt);
//   3. alternates parsing/optimization - user-mode compute runs with a heavy
//      tail (big functions) - with short syscall/page-fault bursts;
//   4. writes the object file (syscalls + an asynchronous disk write).
//
// The compute runs give the distribution its long intervals (clipped at
// 1 ms by the backup interrupt, as in the paper's max = 1000 us), while the
// exec/IO storms supply the 2 us median.

#ifndef SOFTTIMER_SRC_APPSIM_COMPILE_JOB_MODEL_H_
#define SOFTTIMER_SRC_APPSIM_COMPILE_JOB_MODEL_H_

#include "src/machine/kernel.h"
#include "src/sim/random.h"
#include "src/storage/disk_model.h"

namespace softtimer {

class CompileJobModel {
 public:
  struct Config {
    DiskModel::Config disk;
    // fork/exec storm: short syscalls + page faults.
    int exec_storm_ops = 40;
    SimDuration storm_op_median = SimDuration::Micros(1.9);
    double storm_op_sigma = 0.45;
    double storm_trap_fraction = 0.3;
    // Compilation phases per job.
    int phases_per_job = 60;
    // Each phase: a compute run with a heavy tail, then a short burst of
    // syscalls/faults (symbol table spills, buffer flushes).
    SimDuration compute_median = SimDuration::Micros(7);
    double compute_sigma = 1.8;
    SimDuration compute_cap = SimDuration::Micros(980);
    int burst_ops = 6;
    // Source/object file I/O. Reads almost always hit the buffer cache
    // (make's readahead); a blocking miss that parks the CPU is rare.
    double source_cache_miss = 0.01;
    // Fraction of jobs whose source read goes to disk asynchronously
    // (readahead in flight while compilation proceeds).
    double source_readahead = 0.08;
    uint32_t source_bytes = 24 * 1024;
    uint32_t object_bytes = 16 * 1024;
    // The buffer cache batches object write-backs: one disk write per this
    // many jobs (keeps the spindle lightly loaded, as update(8) would).
    int jobs_per_writeback = 16;
    uint64_t rng_seed = 53;
  };

  CompileJobModel(Kernel* kernel, Config config);

  void Start();

  struct Stats {
    uint64_t jobs = 0;
    uint64_t disk_reads = 0;
    uint64_t disk_writes = 0;
  };
  const Stats& stats() const { return stats_; }
  DiskModel& disk() { return disk_; }

 private:
  void StartJob();
  void RunStorm(int remaining, std::function<void()> next);
  void ReadSource(std::function<void()> next);
  void RunPhase(int remaining);
  void WriteObject();

  Kernel* kernel_;
  Config config_;
  Rng rng_;
  DiskModel disk_;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_APPSIM_COMPILE_JOB_MODEL_H_
