#include "src/nfssim/nfs_server_model.h"

#include <utility>

namespace softtimer {

namespace {
SimDuration Us(double v) { return SimDuration::Micros(v); }
}  // namespace

NfsServerModel::NfsServerModel(Kernel* kernel, Nic* nic, Config config)
    : kernel_(kernel), nic_(nic), config_(config), rng_(config.rng_seed),
      disk_(kernel->sim(), config.disk) {}

SimDuration NfsServerModel::Jitter(SimDuration median) {
  if (config_.op_jitter_sigma <= 0) {
    return median;
  }
  return rng_.LogNormalDuration(median, config_.op_jitter_sigma);
}

void NfsServerModel::OnPacket(const Packet& p) {
  if (p.kind != Packet::Kind::kRequest) {
    return;
  }
  ++stats_.rpcs;
  uint64_t flow = p.flow_id;
  // RPC decode + nfsd dispatch in the syscall path.
  kernel_->KernelOp(TriggerSource::kSyscall, Jitter(Us(14)), [this, flow] {
    if (rng_.Bernoulli(config_.metadata_fraction)) {
      ServeMetadata(flow);
    } else {
      ServeRead(flow);
    }
  });
}

void NfsServerModel::ServeMetadata(uint64_t flow) {
  ++stats_.metadata_ops;
  // Attribute/namei lookup out of in-memory caches.
  kernel_->KernelOp(TriggerSource::kSyscall, Jitter(Us(18)),
                    [this, flow] { SendReply(flow, 128); });
}

void NfsServerModel::ServeRead(uint64_t flow) {
  // Buffer-cache lookup; occasionally a long uninterruptible scan (the long
  // trigger-interval tail of the ST-nfs distribution).
  SimDuration lookup = Jitter(Us(12));
  if (rng_.Bernoulli(config_.long_scan_probability)) {
    SimDuration scan = rng_.LogNormalDuration(config_.long_scan_median, 0.75);
    if (scan > SimDuration::Micros(880)) {
      scan = SimDuration::Micros(880);  // bounded by the buffer-cache size
    }
    lookup = lookup + scan;
  }
  kernel_->KernelOp(TriggerSource::kSyscall, lookup, [this, flow] {
    if (rng_.Bernoulli(config_.cache_hit_fraction)) {
      ++stats_.cache_hits;
      SendReply(flow, config_.read_bytes);
      return;
    }
    ++stats_.disk_reads;
    disk_.SubmitRead(config_.read_bytes, [this, flow] {
      // Disk completion interrupt, then the biod/nfsd copy out of the
      // buffer cache.
      kernel_->RaiseInterrupt(TriggerSource::kOtherIntr, Jitter(Us(11)), [this, flow] {
        kernel_->KernelOp(TriggerSource::kSyscall, Jitter(Us(45)),  // 8 KB copy + csum
                          [this, flow] { SendReply(flow, config_.read_bytes); });
      });
    });
  });
}

void NfsServerModel::SendReply(uint64_t flow, uint32_t bytes) {
  SendReplyFragment(flow, bytes);
}

void NfsServerModel::SendReplyFragment(uint64_t flow, uint32_t remaining) {
  uint32_t payload = remaining > kDefaultMss ? kDefaultMss : remaining;
  uint32_t left = remaining - payload;
  // Each UDP fragment takes the ip-output path.
  kernel_->KernelOp(TriggerSource::kIpOutput, Jitter(Us(9)), [this, flow, payload, left] {
    Packet frag;
    frag.flow_id = flow;
    frag.kind = Packet::Kind::kData;
    frag.payload = payload;
    frag.size_bytes = payload + kTcpIpHeaderBytes;
    frag.fin = (left == 0);  // last fragment of this reply
    frag.sent_at = kernel_->sim()->now();
    ++stats_.reply_packets;
    nic_->Transmit(frag);
    if (left > 0) {
      SendReplyFragment(flow, left);
    }
  });
}

// --- Client farm -------------------------------------------------------------

NfsClientFarm::NfsClientFarm(Simulator* sim, Link* uplink, Config config)
    : sim_(sim), uplink_(uplink), config_(config), rng_(config.rng_seed) {}

void NfsClientFarm::Start() {
  for (int i = 0; i < config_.outstanding; ++i) {
    IssueRequest(i);
  }
}

void NfsClientFarm::IssueRequest(int slot) {
  SimDuration think = config_.think_time;
  if (config_.think_jitter_sigma > 0) {
    think = rng_.LogNormalDuration(think, config_.think_jitter_sigma);
  }
  sim_->ScheduleAfter(think, [this, slot] {
    Packet req;
    // Slot in the upper bits so concurrent RPCs stay distinguishable.
    req.flow_id = (static_cast<uint64_t>(slot) << 32) | next_serial_++;
    req.kind = Packet::Kind::kRequest;
    req.size_bytes = 160;
    req.sent_at = sim_->now();
    uplink_->Send(req);
  });
}

void NfsClientFarm::OnPacket(const Packet& p) {
  if (p.kind != Packet::Kind::kData || !p.fin) {
    return;  // mid-reply fragment
  }
  ++replies_;
  IssueRequest(static_cast<int>(p.flow_id >> 32));
}

}  // namespace softtimer
