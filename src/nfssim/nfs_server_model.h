// NFS file-server model: the mechanistic substrate for the ST-nfs workload
// of Table 1 ("saturated but disk-bound, leaving the CPU idle approximately
// 90% of the time").
//
// Clients issue RPCs over UDP through the NIC: mostly 8 KB READs plus cheap
// metadata operations (GETATTR/LOOKUP). The server decodes the RPC in nfsd
// (syscall-path kernel work), consults the buffer cache, and either replies
// straight from memory or queues a DiskModel read whose completion arrives
// as a device interrupt. Replies leave as UDP fragments through the
// ip-output path. The CPU is idle whenever every in-flight RPC is waiting on
// the platter - which is most of the time - so the idle loop dominates the
// machine's trigger-state stream, exactly the paper's ST-nfs regime.

#ifndef SOFTTIMER_SRC_NFSSIM_NFS_SERVER_MODEL_H_
#define SOFTTIMER_SRC_NFSSIM_NFS_SERVER_MODEL_H_

#include <cstdint>
#include <memory>

#include "src/machine/kernel.h"
#include "src/net/nic.h"
#include "src/storage/disk_model.h"

namespace softtimer {

class NfsServerModel {
 public:
  struct Config {
    DiskModel::Config disk;
    // Fraction of READs served from the buffer cache.
    double cache_hit_fraction = 0.25;
    // Fraction of RPCs that are metadata-only (no data transfer).
    double metadata_fraction = 0.45;
    uint32_t read_bytes = 8192;
    // Probability that serving a read walks a long uninterruptible
    // buffer-cache stretch (the source of the paper's 910 us maximum trigger
    // interval), and its median length.
    double long_scan_probability = 0.05;
    SimDuration long_scan_median = SimDuration::Micros(380);
    double op_jitter_sigma = 0.5;
    uint64_t rng_seed = 31;
  };

  NfsServerModel(Kernel* kernel, Nic* nic, Config config);

  // RPC ingress (wired as the NIC's rx handler).
  void OnPacket(const Packet& p);

  struct Stats {
    uint64_t rpcs = 0;
    uint64_t metadata_ops = 0;
    uint64_t cache_hits = 0;
    uint64_t disk_reads = 0;
    uint64_t reply_packets = 0;
  };
  const Stats& stats() const { return stats_; }
  DiskModel& disk() { return disk_; }

 private:
  SimDuration Jitter(SimDuration median);
  void ServeMetadata(uint64_t flow);
  void ServeRead(uint64_t flow);
  void SendReply(uint64_t flow, uint32_t bytes);
  void SendReplyFragment(uint64_t flow, uint32_t remaining);

  Kernel* kernel_;
  Nic* nic_;
  Config config_;
  Rng rng_;
  DiskModel disk_;
  Stats stats_;
};

// Closed-loop NFS client population: `outstanding` RPCs in flight at all
// times, reissued as replies complete. Client-side cost is zero (the client
// machines are not the bottleneck).
class NfsClientFarm {
 public:
  struct Config {
    int outstanding = 8;
    SimDuration think_time = SimDuration::Micros(150);
    double think_jitter_sigma = 0.8;
    uint64_t rng_seed = 13;
  };

  NfsClientFarm(Simulator* sim, Link* uplink, Config config);

  void Start();
  // Reply ingress (wired as the downlink's receiver).
  void OnPacket(const Packet& p);

  uint64_t replies_completed() const { return replies_; }

 private:
  void IssueRequest(int slot);

  Simulator* sim_;
  Link* uplink_;
  Config config_;
  Rng rng_;
  uint64_t next_serial_ = 1;
  uint64_t replies_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_NFSSIM_NFS_SERVER_MODEL_H_
