// Single-spindle disk model, 1999 vintage: seek + rotational latency +
// media transfer, with a FIFO request queue (one outstanding operation at
// the platter). Supplies the disk-bound behaviour of the ST-nfs workload
// (Section 5.3: "the NFS server is saturated but disk-bound, leaving the CPU
// idle approximately 90% of the time") and the disk-completion interrupts of
// the ST-kernel-build workload.

#ifndef SOFTTIMER_SRC_STORAGE_DISK_MODEL_H_
#define SOFTTIMER_SRC_STORAGE_DISK_MODEL_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace softtimer {

class DiskModel {
 public:
  struct Config {
    // Late-90s 7200 rpm SCSI disk.
    SimDuration avg_seek = SimDuration::Millis(8.0);
    double seek_jitter_sigma = 0.45;  // log-normal around avg_seek
    // Half a revolution at 7200 rpm.
    SimDuration avg_rotational = SimDuration::Millis(4.17);
    double media_rate_bytes_per_sec = 20e6;
    // Probability that a request is sequential with the previous one
    // (no seek, minimal rotation).
    double sequential_fraction = 0.35;
    uint64_t rng_seed = 77;
  };

  DiskModel(Simulator* sim, Config config);

  // Queues a transfer of `bytes`; `on_complete` runs at completion time
  // (the caller models the completion interrupt).
  void SubmitRead(uint32_t bytes, std::function<void()> on_complete);
  void SubmitWrite(uint32_t bytes, std::function<void()> on_complete);

  size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }

  struct Stats {
    uint64_t requests = 0;
    uint64_t bytes = 0;
    SimDuration busy_time;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Request {
    uint32_t bytes;
    std::function<void()> on_complete;
  };

  void StartNext();
  SimDuration ServiceTime(uint32_t bytes);

  Simulator* sim_;
  Config config_;
  Rng rng_;
  std::deque<Request> queue_;
  bool busy_ = false;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_STORAGE_DISK_MODEL_H_
