#include "src/storage/disk_model.h"

#include <utility>

namespace softtimer {

DiskModel::DiskModel(Simulator* sim, Config config)
    : sim_(sim), config_(config), rng_(config.rng_seed) {}

void DiskModel::SubmitRead(uint32_t bytes, std::function<void()> on_complete) {
  queue_.push_back(Request{bytes, std::move(on_complete)});
  if (!busy_) {
    StartNext();
  }
}

void DiskModel::SubmitWrite(uint32_t bytes, std::function<void()> on_complete) {
  // Same mechanical cost as a read for this model's purposes.
  SubmitRead(bytes, std::move(on_complete));
}

SimDuration DiskModel::ServiceTime(uint32_t bytes) {
  SimDuration positioning;
  if (rng_.Bernoulli(config_.sequential_fraction)) {
    // Head already in place; a fraction of a rotation at most.
    positioning = config_.avg_rotational * (0.1 * rng_.NextDouble());
  } else {
    positioning = rng_.LogNormalDuration(config_.avg_seek, config_.seek_jitter_sigma) +
                  config_.avg_rotational * (2.0 * rng_.NextDouble());
  }
  SimDuration transfer = SimDuration::Seconds(static_cast<double>(bytes) /
                                              config_.media_rate_bytes_per_sec);
  return positioning + transfer;
}

void DiskModel::StartNext() {
  Request r = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  SimDuration service = ServiceTime(r.bytes);
  ++stats_.requests;
  stats_.bytes += r.bytes;
  stats_.busy_time += service;
  sim_->ScheduleAfter(service, [this, cb = std::move(r.on_complete)] {
    busy_ = false;
    if (cb) {
      cb();
    }
    if (!queue_.empty() && !busy_) {
      StartNext();
    }
  });
}

}  // namespace softtimer
