// Wall-clock ClockSource backed by std::chrono::steady_clock.
//
// This is what a production (non-simulated) deployment of the soft-timer
// facility reads instead of the simulator's virtual time - the moral
// equivalent of the paper's "reading the clock (usually a CPU register)".
// Ticks count from construction at a configurable resolution (default 1 MHz,
// the paper's typical measurement clock).

#ifndef SOFTTIMER_SRC_RT_MONOTONIC_CLOCK_SOURCE_H_
#define SOFTTIMER_SRC_RT_MONOTONIC_CLOCK_SOURCE_H_

#include <chrono>
#include <cstdint>

#include "src/core/clock_source.h"

namespace softtimer {

class MonotonicClockSource : public ClockSource {
 public:
  explicit MonotonicClockSource(uint64_t hz = 1'000'000)
      : hz_(hz), origin_(std::chrono::steady_clock::now()) {}

  uint64_t NowTicks() const override {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - origin_)
                  .count();
    return static_cast<uint64_t>(static_cast<__uint128_t>(ns) * hz_ / 1'000'000'000ULL);
  }

  uint64_t ResolutionHz() const override { return hz_; }

  // Nanoseconds from now until `tick` is reached (0 if already past).
  std::chrono::nanoseconds UntilTick(uint64_t tick) const {
    uint64_t now = NowTicks();
    if (tick <= now) {
      return std::chrono::nanoseconds(0);
    }
    uint64_t dt = tick - now;
    return std::chrono::nanoseconds(
        static_cast<int64_t>(static_cast<__uint128_t>(dt) * 1'000'000'000ULL / hz_));
  }

 private:
  uint64_t hz_;
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_RT_MONOTONIC_CLOCK_SOURCE_H_
