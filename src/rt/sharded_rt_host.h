// Multi-core real-time host for ShardedSoftTimerRuntime: one trigger-loop
// thread per shard, each playing the role the paper assigns to a CPU.
//
// Every shard thread alternates trigger-state checks with backup-bounded
// sleeps, exactly like RtSoftTimerHost does for one core: a sleep never
// extends past the earlier of the shard's next soft-event deadline and one
// backup period, so the paper's T < actual < T + X + 1 bound holds per
// shard. Two things are multi-core specific:
//
//  * Wakeups. A cross-core schedule must not wait out the target shard's
//    sleep, so the runtime's wake hook pokes the target thread's eventcount
//    (atomic `sleeping` flag + condvar). Producers take the shard's mutex
//    only when the target is actually asleep; the seq_cst fences on both
//    sides close the classic sleep/publish race, and the backup bound makes
//    even a hypothetical missed wakeup a bounded-lateness event, never a
//    lost one.
//
//  * Idle-shard work takeover. The paper has idle CPUs poll the network
//    instead of halting (Section 5.2; mirrored by tests/smp_test.cc). When
//    Config::idle_work is set, at most one otherwise-idle shard at a time
//    claims it (single atomic owner slot) and busy-runs it instead of
//    sleeping, releasing the claim as soon as its own timers need service.
//
// Producer threads (application threads scheduling onto shards) register
// through RegisterProducer() and use the runtime's cross-core API directly.

#ifndef SOFTTIMER_SRC_RT_SHARDED_RT_HOST_H_
#define SOFTTIMER_SRC_RT_SHARDED_RT_HOST_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/sharded_soft_timer_runtime.h"
#include "src/rt/eventcount.h"
#include "src/rt/monotonic_clock_source.h"

namespace softtimer {

class ShardedRtHost {
 public:
  enum class IdleStrategy {
    kSleep,     // backup-bounded condvar sleep (production default)
    kBusyPoll,  // spin on trigger-state checks (lowest latency; benches)
  };

  struct Config {
    size_t num_shards = 2;
    uint64_t measure_hz = 1'000'000;
    uint64_t interrupt_clock_hz = 1'000;  // backup bound: 1 ms
    TimerQueueKind queue_kind = TimerQueueKind::kHashedWheel;
    IdleStrategy idle_strategy = IdleStrategy::kSleep;
    size_t max_producers = 8;
    size_t ring_capacity = 1024;
    // Shared polling work (e.g. the network poll loop). When set, one
    // otherwise-idle shard at a time runs it instead of sleeping. Must be
    // thread-compatible: it is only ever run by one shard at a time, but
    // that shard changes over time.
    std::function<size_t()> idle_work;
    // Per-shard hooks, each invoked on the shard's own loop thread (so they
    // may freely touch that shard's facility and shard-local state such as
    // a PacingWheelHost). `shard_setup` runs once, before the loop's first
    // iteration; `shard_tick` runs every iteration right after the
    // trigger-state check (e.g. an opportunistic PacingWheelHost::Poll()).
    std::function<void(size_t shard)> shard_setup;
    std::function<void(size_t shard)> shard_tick;
  };

  explicit ShardedRtHost(Config config);
  ~ShardedRtHost();

  ShardedRtHost(const ShardedRtHost&) = delete;
  ShardedRtHost& operator=(const ShardedRtHost&) = delete;

  ShardedSoftTimerRuntime& runtime() { return *runtime_; }
  const MonotonicClockSource& clock() const { return clock_; }
  size_t num_shards() const { return config_.num_shards; }

  // Spawns one trigger-loop thread per shard. After Start(), shard
  // facilities belong to their loop threads: interact through the runtime's
  // producer API (or stop first).
  void Start();
  // Stops and joins all shard threads. Idempotent.
  void Stop();
  bool running() const { return running_; }

  // Registers the calling (producer) thread; see
  // ShardedSoftTimerRuntime::RegisterProducer.
  ShardedSoftTimerRuntime::ProducerToken RegisterProducer() {
    return runtime_->RegisterProducer();
  }

  struct ShardLoopStats {
    uint64_t polls = 0;          // trigger-state checks performed by the loop
    uint64_t sleeps = 0;         // condvar sleeps entered
    uint64_t backup_checks = 0;  // sleeps that ran to the backup bound
    uint64_t wakeups = 0;        // producer pokes delivered to a sleeper
    uint64_t idle_work_runs = 0; // idle_work invocations by this shard
  };
  // Safe while running for `wakeups`; read the rest after Stop() (or accept
  // a torn-but-monotonic snapshot).
  ShardLoopStats shard_loop_stats(size_t shard) const;

 private:
  // Everything one shard's loop thread touches, cache-line separated.
  struct alignas(kCacheLineBytes) ShardLoop {
    std::mutex m;
    std::condition_variable cv;
    // Raised while the loop thread is inside (or committed to entering) a
    // condvar wait; producers only take the mutex when they observe it. The
    // flag+fence protocol lives in src/rt/eventcount.h (model-checked by
    // tests/model_check_test.cc).
    SleeperGate<> gate;
    std::atomic<uint64_t> wakeups{0};
    ShardLoopStats stats;  // loop-thread writes (wakeups mirrored on read)
    std::thread thread;
  };

  static void WakeShard(void* ctx, size_t shard);
  void RunShard(size_t shard);
  // Backup-bounded sleep for `shard`; returns handlers fired by the check
  // performed on wakeup.
  size_t SleepAndDispatch(size_t shard);

  Config config_;
  MonotonicClockSource clock_;
  std::unique_ptr<ShardedSoftTimerRuntime> runtime_;
  std::vector<std::unique_ptr<ShardLoop>> loops_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  // Idle-work arbiter: index of the shard currently running idle_work, or
  // kNoIdleOwner. Claimed with a single CAS by an idle shard.
  static constexpr size_t kNoIdleOwner = static_cast<size_t>(-1);
  std::atomic<size_t> idle_owner_{kNoIdleOwner};
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_RT_SHARDED_RT_HOST_H_
