// Multi-core real-time host for ShardedSoftTimerRuntime: one trigger-loop
// thread per shard, each playing the role the paper assigns to a CPU.
//
// Every shard thread alternates trigger-state checks with backup-bounded
// sleeps, exactly like RtSoftTimerHost does for one core: a sleep never
// extends past the earlier of the shard's next soft-event deadline and one
// backup period, so the paper's T < actual < T + X + 1 bound holds per
// shard. Two things are multi-core specific:
//
//  * Wakeups. A cross-core schedule must not wait out the target shard's
//    sleep, so the runtime's wake hook pokes the target thread's eventcount
//    (atomic `sleeping` flag + condvar). Producers take the shard's mutex
//    only when the target is actually asleep; the seq_cst fences on both
//    sides close the classic sleep/publish race, and the backup bound makes
//    even a hypothetical missed wakeup a bounded-lateness event, never a
//    lost one.
//
//  * Idle-shard work takeover. The paper has idle CPUs poll the network
//    instead of halting (Section 5.2; mirrored by tests/smp_test.cc). When
//    Config::idle_work is set, at most one otherwise-idle shard at a time
//    claims it (single atomic owner slot) and busy-runs it instead of
//    sleeping, releasing the claim as soon as its own timers need service.
//
// Per-shard profiles (DESIGN.md section 14). Each shard runs one of two
// loop profiles, selected by Config::shard_profiles so mixed-profile hosts
// are first-class:
//
//  * kNormal - the loop described above (trigger checks + backup-bounded
//    sleeps, optional idle-work takeover).
//
//  * kIsolated - a latency-SLO dedicated core: the loop spins on
//    trigger-state checks forever (CpuRelax() pause hint per iteration) and
//    NEVER parks on the eventcount, so a cross-core schedule is picked up
//    within one check gap instead of one condvar wakeup. The backup
//    interrupt is either disabled outright (the spin IS the bound) or
//    emulated in software and armed EARLY by a calibrated compensation
//    (CHRONOS-style: the arm-to-fire overhead of a software backup is the
//    loop's check gap, measured at startup, and subtracting it from the
//    backup deadline makes on-time backup fires structural rather than
//    lucky). Because this repo's CI runs on shared 1-core VMs where the
//    hypervisor steals the CPU for multi-microsecond stretches, the loop
//    also detects preemption (clock-read gap above a steal threshold) and
//    keeps TWO dispatch-lateness histograms: `raw` (every dispatch) and
//    `clean` (dispatches not adjacent to a detected steal). SLO gates read
//    the clean histogram - the same CPU-attribution methodology as the
//    bench suite's CPU-time-per-op numbers - while raw is always reported
//    alongside.
//
// Producer threads (application threads scheduling onto shards) register
// through RegisterProducer() and use the runtime's cross-core API directly.

#ifndef SOFTTIMER_SRC_RT_SHARDED_RT_HOST_H_
#define SOFTTIMER_SRC_RT_SHARDED_RT_HOST_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/sharded_soft_timer_runtime.h"
#include "src/rt/eventcount.h"
#include "src/rt/monotonic_clock_source.h"
#include "src/stats/latency_histogram.h"

namespace softtimer {

class ShardedRtHost {
 public:
  enum class IdleStrategy {
    kSleep,     // backup-bounded condvar sleep (production default)
    kBusyPoll,  // spin on trigger-state checks (lowest latency; benches)
  };

  enum class ShardProfile {
    kNormal,    // trigger checks + backup-bounded sleeps (default)
    kIsolated,  // dedicated spinning core, never sleeps on the eventcount
  };

  // Backup-interrupt policy for an isolated shard. The spin loop emulates
  // the backup in software (there is no real timer interrupt to program), so
  // "arming" means picking the tick at which the loop performs a
  // kBackupIntr-attributed check for the backup nominally due at D.
  enum class IsolatedBackup {
    kDisabled,       // no backup at all: the spin is the bound
    kUncompensated,  // arm at D: fires one check gap AFTER D, i.e. late
    kCompensated,    // arm at D - compensation: on-time unless preempted
  };

  struct ShardProfileConfig {
    ShardProfile profile = ShardProfile::kNormal;
    // Isolated shards only; ignored for kNormal.
    IsolatedBackup backup = IsolatedBackup::kCompensated;
    // Dispatch-lateness SLO budget in measure ticks. Clean dispatches whose
    // FireInfo::lateness_ticks() exceeds it bump IsolatedShardStats::
    // slo_violations. 0 disables SLO accounting. Honoured on either profile
    // (a normal shard may carry an SLO too; every dispatch counts as clean
    // there since only the isolated loop performs steal detection).
    uint64_t slo_lateness_ticks = 0;
    // Ticks subtracted from the backup deadline under kCompensated.
    // 0 = auto-calibrate: derived from the measured spin check gap at shard
    // startup so the compensation covers the arm-to-fire overhead.
    uint64_t backup_compensation_ticks = 0;
    // Clock-read gap above which an isolated check is attributed to
    // hypervisor/OS preemption and its dispatches kept out of the clean
    // histogram. 0 = auto (a generous multiple of the calibrated gap).
    uint64_t steal_threshold_ticks = 0;
  };

  struct Config {
    size_t num_shards = 2;
    uint64_t measure_hz = 1'000'000;
    uint64_t interrupt_clock_hz = 1'000;  // backup bound: 1 ms
    TimerQueueKind queue_kind = TimerQueueKind::kHashedWheel;
    IdleStrategy idle_strategy = IdleStrategy::kSleep;
    size_t max_producers = 8;
    size_t ring_capacity = 1024;
    // Shared polling work (e.g. the network poll loop). When set, one
    // otherwise-idle shard at a time runs it instead of sleeping. Must be
    // thread-compatible: it is only ever run by one shard at a time, but
    // that shard changes over time.
    std::function<size_t()> idle_work;
    // M-on-N claimed queue polling (MultiQueuePoller, src/net). Unlike
    // idle_work's single-owner arbiter, queue_work is served by EVERY
    // kNormal shard concurrently - per-queue exclusivity is the callee's
    // problem (the QueueClaim protocol). `poll` runs once per loop
    // iteration (it claims and drains at most one due queue; the loop keeps
    // serving while it returns packets), and `next_due` bounds the shard's
    // sleep so no due queue waits for a backup interrupt when every shard
    // has parked. Isolated shards never touch it - the core is dedicated.
    struct QueueWork {
      // (shard, now_tick) -> packets drained; typically
      // MultiQueuePoller::PollOnce with shard as the core id.
      std::function<size_t(size_t shard, uint64_t now_tick)> poll;
      // Set-wide earliest next-due tick (MultiQueuePoller::next_due_tick).
      std::function<uint64_t()> next_due;
    };
    QueueWork queue_work;
    // Per-shard hooks, each invoked on the shard's own loop thread (so they
    // may freely touch that shard's facility and shard-local state such as
    // a PacingWheelHost). `shard_setup` runs once, before the loop's first
    // iteration; `shard_tick` runs every iteration right after the
    // trigger-state check (e.g. an opportunistic PacingWheelHost::Poll()).
    std::function<void(size_t shard)> shard_setup;
    std::function<void(size_t shard)> shard_tick;
    // Per-shard profiles. Empty = every shard runs kNormal. Otherwise must
    // have exactly num_shards entries; mixed hosts (isolated shard 0 beside
    // normal shard 1) are the intended use. Isolated shards ignore
    // idle_strategy and never claim idle_work - the core is dedicated.
    std::vector<ShardProfileConfig> shard_profiles;
  };

  explicit ShardedRtHost(Config config);
  ~ShardedRtHost();

  ShardedRtHost(const ShardedRtHost&) = delete;
  ShardedRtHost& operator=(const ShardedRtHost&) = delete;

  ShardedSoftTimerRuntime& runtime() { return *runtime_; }
  const MonotonicClockSource& clock() const { return clock_; }
  size_t num_shards() const { return config_.num_shards; }

  // Spawns one trigger-loop thread per shard. After Start(), shard
  // facilities belong to their loop threads: interact through the runtime's
  // producer API (or stop first).
  void Start();
  // Stops and joins all shard threads. Idempotent.
  void Stop();
  bool running() const { return running_; }

  // Registers the calling (producer) thread; see
  // ShardedSoftTimerRuntime::RegisterProducer.
  ShardedSoftTimerRuntime::ProducerToken RegisterProducer() {
    return runtime_->RegisterProducer();
  }

  struct ShardLoopStats {
    uint64_t polls = 0;          // trigger-state checks performed by the loop
    uint64_t sleeps = 0;         // condvar sleeps entered
    uint64_t backup_checks = 0;  // checks attributed to the backup interrupt
    uint64_t wakeups = 0;        // producer pokes delivered to a sleeper
    uint64_t idle_work_runs = 0; // idle_work invocations by this shard
    uint64_t queue_polls = 0;    // queue_work.poll invocations by this shard
    uint64_t queue_packets = 0;  // packets those invocations drained
  };
  // Safe while running for `wakeups`; read the rest after Stop() (or accept
  // a torn-but-monotonic snapshot).
  ShardLoopStats shard_loop_stats(size_t shard) const;

  // Counters specific to the isolated spin loop (all zero for kNormal
  // shards). Quiesced reads only, like the histograms below.
  struct IsolatedShardStats {
    uint64_t spin_checks = 0;   // iterations of the spin loop
    uint64_t steal_events = 0;  // checks whose leading gap exceeded the
                                // steal threshold (preemption detected)
    uint64_t stolen_ticks = 0;  // total ticks inside detected steal gaps
    uint64_t max_gap_ticks = 0; // largest check-to-check clock gap seen
    // Dispatches excluded from the clean histogram because a steal was
    // detected in the gap before or after their check (they stay in raw).
    uint64_t steal_suppressed_dispatches = 0;
    uint64_t backup_fires = 0;      // software-backup checks performed
    uint64_t backup_on_time = 0;    // fired at or before the nominal D
    uint64_t backup_true_late = 0;  // fired past D with no steal detected
    uint64_t backup_steal_late = 0; // fired past D because of a steal
    uint64_t slo_violations = 0;    // clean dispatches over the SLO budget
    // Effective knobs after startup auto-calibration, for reporting.
    uint64_t calibrated_gap_ticks = 0;   // median spin check gap
    uint64_t steal_threshold_ticks = 0;
    uint64_t compensation_ticks = 0;
  };
  IsolatedShardStats isolated_shard_stats(size_t shard) const;

  // Dispatch-lateness histograms (FireInfo::lateness_ticks per dispatched
  // handler), fed by a facility lateness probe on EVERY shard. On a normal
  // shard raw == clean; on an isolated shard, clean excludes steal-adjacent
  // dispatches (see header comment). Written by the shard's loop thread:
  // read after Stop(), or from the loop thread itself (shard_tick hooks).
  const LatencyHistogram& shard_lateness_raw(size_t shard) const;
  const LatencyHistogram& shard_lateness_clean(size_t shard) const;

  // The effective profile of a shard (resolved against the default).
  const ShardProfileConfig& shard_profile(size_t shard) const {
    return profiles_[shard];
  }

 private:
  // Dispatches buffered per check awaiting the trailing-gap steal verdict
  // (see LatenessProbe). Far above any sane dispatch batch for an
  // SLO-carrying shard; overflow falls back to raw-only recording.
  static constexpr size_t kCleanBufferCap = 64;

  // Everything one shard's loop thread touches, cache-line separated.
  struct alignas(kCacheLineBytes) ShardLoop {
    std::mutex m;
    std::condition_variable cv;
    // Raised while the loop thread is inside (or committed to entering) a
    // condvar wait; producers only take the mutex when they observe it. The
    // flag+fence protocol lives in src/rt/eventcount.h (model-checked by
    // tests/model_check_test.cc).
    SleeperGate<> gate;
    std::atomic<uint64_t> wakeups{0};
    ShardLoopStats stats;  // loop-thread writes (wakeups mirrored on read)
    IsolatedShardStats iso;
    // Lateness-probe state (loop-thread only, set up before Start()).
    bool isolated = false;
    bool check_tainted = false;  // current check's leading gap was a steal
    uint64_t slo_budget = 0;
    size_t pending_clean_count = 0;
    std::array<uint64_t, kCleanBufferCap> pending_clean{};
    LatencyHistogram lateness_raw;
    LatencyHistogram lateness_clean;
    std::thread thread;
  };

  static void WakeShard(void* ctx, size_t shard);
  // Facility lateness probe, installed on every shard facility with the
  // shard's ShardLoop as context; runs inside DispatchFired on the loop
  // thread (or whichever thread drives a quiesced facility in tests).
  static void LatenessProbe(void* ctx, const SoftTimerFacility::FireInfo& info);
  void RunShard(size_t shard);
  void RunShardIsolated(size_t shard);
  // Median clock gap of a short spin burst; the isolated loop's calibration.
  uint64_t CalibrateSpinGap() const;
  // Flush (clean trailing gap) or suppress (steal trailing gap) the
  // dispatches buffered during the previous isolated check.
  void ResolvePendingClean(ShardLoop& loop, bool trailing_steal);
  // Backup-bounded sleep for `shard`; returns handlers fired by the check
  // performed on wakeup.
  size_t SleepAndDispatch(size_t shard);

  Config config_;
  MonotonicClockSource clock_;
  std::vector<ShardProfileConfig> profiles_;  // resolved, num_shards entries
  std::unique_ptr<ShardedSoftTimerRuntime> runtime_;
  std::vector<std::unique_ptr<ShardLoop>> loops_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  // Idle-work arbiter: index of the shard currently running idle_work, or
  // kNoIdleOwner. Claimed with a single CAS by an idle shard.
  static constexpr size_t kNoIdleOwner = static_cast<size_t>(-1);
  std::atomic<size_t> idle_owner_{kNoIdleOwner};
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_RT_SHARDED_RT_HOST_H_
