#include "src/rt/rt_soft_timer_host.h"

#include <thread>

namespace softtimer {

RtSoftTimerHost::RtSoftTimerHost(Config config)
    : config_(config), clock_(config.measure_hz) {
  SoftTimerFacility::Config fc;
  fc.interrupt_clock_hz = config_.interrupt_clock_hz;
  fc.queue_kind = config_.queue_kind;
  facility_ = std::make_unique<SoftTimerFacility>(&clock_, fc);
}

size_t RtSoftTimerHost::PollTriggerState(TriggerSource source) {
  ++stats_.polls;
  return facility_->OnTriggerState(source);
}

size_t RtSoftTimerHost::SleepAndDispatch() {
  ++stats_.sleeps;
  uint64_t backup_ticks = facility_->ticks_per_backup_interval();
  uint64_t now = clock_.NowTicks();
  uint64_t wake_tick = now + backup_ticks;
  bool backup_bound = true;
  std::optional<uint64_t> deadline = facility_->NextDeadlineTick();
  if (deadline && *deadline < wake_tick) {
    wake_tick = *deadline;
    backup_bound = false;
  }
  std::this_thread::sleep_for(clock_.UntilTick(wake_tick));
  if (backup_bound) {
    ++stats_.backup_checks;
    return facility_->OnBackupInterrupt();
  }
  return facility_->OnTriggerState(TriggerSource::kIdleLoop);
}

void RtSoftTimerHost::RunFor(std::chrono::nanoseconds duration,
                             const std::function<void()>& work) {
  auto end = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < end) {
    if (work) {
      work();
      PollTriggerState();
    } else {
      SleepAndDispatch();
    }
  }
}

}  // namespace softtimer
