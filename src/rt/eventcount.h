// SleeperGate: the eventcount-style sleep/wake flag protocol used by
// ShardedRtHost to keep a cross-core publish from waiting out a sleeping
// shard's backup-bounded condvar wait.
//
// The gate owns only the atomic `sleeping` flag and its fences; the mutex /
// condition_variable half of the eventcount stays in the host (the model
// checker verifies the flag protocol, which is where the lost-wakeup race
// lives - the condvar part is ordinary blocking code under a lock).
//
// Sleeper (shard loop thread):              Waker (producer thread):
//   lock(m)                                   publish command (ring + flag)
//   gate.PrepareSleep()    // sleeping=1;     if (gate.SleeperVisible()) {
//                          // fence             // fence; sleeping != 0
//   recheck pending/stop   // under the          lock(m); cv.notify_one()
//   cv.wait(...)           // flag            }
//   gate.FinishSleep()     // sleeping=0
//
// This is the same Dekker shape as RemotePendingFlag with the roles
// swapped: each side stores its flag, fences, then reads the other side's
// state. If the sleeper's recheck misses the publish, the waker's fence
// orders its sleeping-load after the sleeper's sleeping-store, so it
// observes 1 and delivers the notify (blocking on the mutex until the wait
// releases it). Dropping either fence re-opens the classic lost-wakeup:
// both sides' stores sit in store buffers, the recheck reads pending==0,
// the waker reads sleeping==0, and the shard sleeps a full backup period
// with work queued. tests/model_check_test.cc explores both the shipped
// orderings (no lost wakeup in any interleaving) and the weakened ones
// (WeakWakeOrdering / WeakPrepareOrdering reproduce the miss).
//
// Traits/Ordering parameters: see src/core/atomics_traits.h. Production uses
// the defaults; never override Ordering outside the model-check suite.

#ifndef SOFTTIMER_SRC_RT_EVENTCOUNT_H_
#define SOFTTIMER_SRC_RT_EVENTCOUNT_H_

#include <atomic>
#include <cstdint>

#include "src/core/atomics_traits.h"

namespace softtimer {

// Shipped orderings for the sleep/wake gate.
struct SleeperGateOrdering {
  // ordering: the flag store needs no ordering of its own; the fence right
  // after it is what orders it against the recheck's loads.
  static constexpr std::memory_order kSleepStore = std::memory_order_relaxed;
  // Store-load fence between announcing sleep and rechecking the wake
  // condition; pairs with kWakeFence on the producer side.
  static constexpr std::memory_order kSleepFence = std::memory_order_seq_cst;
  // Store-load fence between the producer's publish and its sleeping-flag
  // read; pairs with kSleepFence (see the lost-wakeup scenario above).
  static constexpr std::memory_order kWakeFence = std::memory_order_seq_cst;
  // ordering: the fence before this load does the ordering; the load itself
  // can be relaxed.
  static constexpr std::memory_order kWakeLoad = std::memory_order_relaxed;
  // ordering: clearing the flag after a wait races nothing that matters - a
  // spurious notify to an awake loop is harmless.
  static constexpr std::memory_order kWakeClearStore =
      std::memory_order_relaxed;
};

template <typename Traits = StdAtomicsTraits,
          typename Ordering = SleeperGateOrdering>
class SleeperGate {
 public:
  // Sleeper side: announce intent to sleep. Must be followed by a recheck
  // of the wake condition before actually blocking (the fence makes a
  // publish that the recheck misses observe sleeping==1 instead).
  void PrepareSleep() {
    sleeping_.store(1, Ordering::kSleepStore);
    Traits::ThreadFence(Ordering::kSleepFence);
  }

  // Sleeper side: done sleeping (or decided not to block after all).
  void FinishSleep() { sleeping_.store(0, Ordering::kWakeClearStore); }

  // Waker side, after publishing work: true when the sleeper may be inside
  // (or committed to entering) its wait, i.e. the caller must deliver a
  // notify. False means the sleeper's recheck is guaranteed to observe the
  // published work.
  bool SleeperVisible() {
    Traits::ThreadFence(Ordering::kWakeFence);
    return sleeping_.load(Ordering::kWakeLoad) != 0;
  }

  // Introspection (tests/stats): whether the sleeper flag is currently up.
  bool sleeping_relaxed() const {
    // ordering: diagnostic read only; never used for synchronization.
    return sleeping_.load(std::memory_order_relaxed) != 0;
  }

 private:
  typename Traits::template Atomic<uint32_t> sleeping_{0};
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_RT_EVENTCOUNT_H_
