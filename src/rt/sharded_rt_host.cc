#include "src/rt/sharded_rt_host.h"

#include <cassert>

namespace softtimer {

ShardedRtHost::ShardedRtHost(Config config)
    : config_(config), clock_(config.measure_hz) {
  assert(config_.num_shards >= 1);
  ShardedSoftTimerRuntime::Config rc;
  rc.num_shards = config_.num_shards;
  rc.max_producers = config_.max_producers;
  rc.ring_capacity = config_.ring_capacity;
  rc.facility.interrupt_clock_hz = config_.interrupt_clock_hz;
  rc.facility.queue_kind = config_.queue_kind;
  runtime_ = std::make_unique<ShardedSoftTimerRuntime>(&clock_, rc);
  runtime_->set_wake_hook(&ShardedRtHost::WakeShard, this);
  loops_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    loops_.push_back(std::make_unique<ShardLoop>());
  }
}

ShardedRtHost::~ShardedRtHost() { Stop(); }

void ShardedRtHost::Start() {
  if (running_) {
    return;
  }
  // ordering: loop threads are created after this store; the thread launch
  // itself synchronizes.
  stop_.store(false, std::memory_order_relaxed);
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { RunShard(i); });
  }
  running_ = true;
}

void ShardedRtHost::Stop() {
  if (!running_) {
    return;
  }
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& loop : loops_) {
    // Pairs with the sleeper's sleeping-store / stop-check sequence: taking
    // the mutex serializes with the window between its recheck and its wait.
    std::lock_guard<std::mutex> lock(loop->m);
    loop->cv.notify_one();
  }
  for (auto& loop : loops_) {
    loop->thread.join();
  }
  running_ = false;
}

void ShardedRtHost::WakeShard(void* ctx, size_t shard) {
  auto* host = static_cast<ShardedRtHost*>(ctx);
  ShardLoop& loop = *host->loops_[shard];
  // Fence + sleeping-flag read (src/rt/eventcount.h): if the sleeper's
  // pending-flag recheck missed our publish, the gate's fence orders our
  // sleeping-load after its sleeping-store, so we observe it awake-or-
  // committed and deliver the notify.
  if (loop.gate.SleeperVisible()) {
    std::lock_guard<std::mutex> lock(loop.m);
    loop.cv.notify_one();
    // ordering: stats counter; read quiesced or tolerating staleness.
    loop.wakeups.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ShardedRtHost::SleepAndDispatch(size_t shard) {
  ShardLoop& loop = *loops_[shard];
  SoftTimerFacility& facility = runtime_->shard_facility(shard);
  uint64_t wake_tick = clock_.NowTicks() + facility.ticks_per_backup_interval();
  bool backup_bound = true;
  std::optional<uint64_t> deadline = facility.NextDeadlineTick();
  if (deadline && *deadline < wake_tick) {
    wake_tick = *deadline;
    backup_bound = false;
  }
  {
    std::unique_lock<std::mutex> lock(loop.m);
    loop.gate.PrepareSleep();
    // Recheck under the flag: a command published before the gate's fence is
    // visible here; one published after it sees the sleeper flag and
    // notifies (blocking on the mutex until our wait releases it).
    if (!runtime_->remote_pending(shard) &&
        // ordering: stop is rechecked every loop iteration and Stop() takes
        // the mutex before notifying, so a relaxed read here only risks one
        // bounded sleep, never a missed shutdown.
        !stop_.load(std::memory_order_relaxed)) {
      ++loop.stats.sleeps;
      loop.cv.wait_for(lock, clock_.UntilTick(wake_tick));
    }
    loop.gate.FinishSleep();
  }
  if (backup_bound && clock_.NowTicks() >= wake_tick) {
    ++loop.stats.backup_checks;
    return runtime_->OnBackupInterrupt(shard);
  }
  return runtime_->OnTriggerState(shard, TriggerSource::kIdleLoop);
}

void ShardedRtHost::RunShard(size_t shard) {
  ShardLoop& loop = *loops_[shard];
  if (config_.shard_setup) {
    config_.shard_setup(shard);
  }
  // ordering: both stop checks are relaxed - the loop re-polls continuously
  // and the sleep path rechecks under the eventcount, so staleness costs at
  // most one extra iteration.
  while (!stop_.load(std::memory_order_relaxed)) {
    ++loop.stats.polls;
    runtime_->OnTriggerState(shard, TriggerSource::kIdleLoop);
    if (config_.shard_tick) {
      config_.shard_tick(shard);
    }
    // ordering: same relaxed-stop contract as the loop condition above.
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
    if (config_.idle_strategy == IdleStrategy::kBusyPoll) {
      continue;
    }
    if (config_.idle_work) {
      // Section 5.2: an idle CPU polls instead of halting. One idle shard at
      // a time claims the shared work; it keeps the claim while its own
      // timers are quiet and hands it back once they need service, so the
      // work migrates to whichever shard is idle.
      size_t expected = kNoIdleOwner;
      bool owner =
          // ordering: relaxed self-check - only this shard ever stores its
          // own index, so reading it back needs no synchronization.
          idle_owner_.load(std::memory_order_relaxed) == shard ||
          // ordering: acq_rel claim - acquire pairs with the release
          // handback below so the new owner sees the previous owner's
          // idle_work effects; release publishes ours when we hand back.
          idle_owner_.compare_exchange_strong(expected, shard,
                                              std::memory_order_acq_rel);
      if (owner) {
        uint64_t horizon =
            clock_.NowTicks() +
            runtime_->shard_facility(shard).ticks_per_backup_interval();
        std::optional<uint64_t> deadline =
            runtime_->shard_facility(shard).NextDeadlineTick();
        if (deadline && *deadline < horizon) {
          // ordering: release handback - publishes this owner's idle_work
          // effects to whichever shard claims the slot next (acquire CAS).
          idle_owner_.store(kNoIdleOwner, std::memory_order_release);
        } else {
          config_.idle_work();
          ++loop.stats.idle_work_runs;
          continue;  // poll again right away; no sleep while owning
        }
      }
    }
    SleepAndDispatch(shard);
  }
  // ordering: relaxed self-check + release handback, same pairing as the
  // idle-work claim above (only this shard ever stores its own index).
  if (idle_owner_.load(std::memory_order_relaxed) == shard) {
    idle_owner_.store(kNoIdleOwner, std::memory_order_release);
  }
}

ShardedRtHost::ShardLoopStats ShardedRtHost::shard_loop_stats(
    size_t shard) const {
  ShardLoopStats s = loops_[shard]->stats;
  // ordering: stats counter; monotonic, staleness acceptable by contract.
  s.wakeups = loops_[shard]->wakeups.load(std::memory_order_relaxed);
  return s;
}

}  // namespace softtimer
