#include "src/rt/sharded_rt_host.h"

#include <algorithm>
#include <cassert>

#include "src/core/cpu_relax.h"

namespace softtimer {

ShardedRtHost::ShardedRtHost(Config config)
    : config_(std::move(config)), clock_(config_.measure_hz) {
  assert(config_.num_shards >= 1);
  assert(config_.shard_profiles.empty() ||
         config_.shard_profiles.size() == config_.num_shards);
  profiles_ = config_.shard_profiles;
  profiles_.resize(config_.num_shards);  // missing entries default to kNormal
  ShardedSoftTimerRuntime::Config rc;
  rc.num_shards = config_.num_shards;
  rc.max_producers = config_.max_producers;
  rc.ring_capacity = config_.ring_capacity;
  rc.facility.interrupt_clock_hz = config_.interrupt_clock_hz;
  rc.facility.queue_kind = config_.queue_kind;
  runtime_ = std::make_unique<ShardedSoftTimerRuntime>(&clock_, rc);
  runtime_->set_wake_hook(&ShardedRtHost::WakeShard, this);
  loops_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    loops_.push_back(std::make_unique<ShardLoop>());
    ShardLoop& loop = *loops_.back();
    loop.isolated = profiles_[i].profile == ShardProfile::kIsolated;
    loop.slo_budget = profiles_[i].slo_lateness_ticks;
    runtime_->shard_facility(i).set_lateness_probe(
        &ShardedRtHost::LatenessProbe, &loop);
  }
}

ShardedRtHost::~ShardedRtHost() { Stop(); }

void ShardedRtHost::Start() {
  if (running_) {
    return;
  }
  // ordering: loop threads are created after this store; the thread launch
  // itself synchronizes.
  stop_.store(false, std::memory_order_relaxed);
  for (size_t i = 0; i < loops_.size(); ++i) {
    bool isolated = profiles_[i].profile == ShardProfile::kIsolated;
    loops_[i]->thread = std::thread(
        [this, i, isolated] { isolated ? RunShardIsolated(i) : RunShard(i); });
  }
  running_ = true;
}

void ShardedRtHost::Stop() {
  if (!running_) {
    return;
  }
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& loop : loops_) {
    // Pairs with the sleeper's sleeping-store / stop-check sequence: taking
    // the mutex serializes with the window between its recheck and its wait.
    std::lock_guard<std::mutex> lock(loop->m);
    loop->cv.notify_one();
  }
  for (auto& loop : loops_) {
    loop->thread.join();
  }
  running_ = false;
}

void ShardedRtHost::WakeShard(void* ctx, size_t shard) {
  auto* host = static_cast<ShardedRtHost*>(ctx);
  ShardLoop& loop = *host->loops_[shard];
  // Fence + sleeping-flag read (src/rt/eventcount.h): if the sleeper's
  // pending-flag recheck missed our publish, the gate's fence orders our
  // sleeping-load after its sleeping-store, so we observe it awake-or-
  // committed and deliver the notify.
  if (loop.gate.SleeperVisible()) {
    std::lock_guard<std::mutex> lock(loop.m);
    loop.cv.notify_one();
    // ordering: stats counter; read quiesced or tolerating staleness.
    loop.wakeups.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ShardedRtHost::SleepAndDispatch(size_t shard) {
  ShardLoop& loop = *loops_[shard];
  SoftTimerFacility& facility = runtime_->shard_facility(shard);
  uint64_t wake_tick = clock_.NowTicks() + facility.ticks_per_backup_interval();
  bool backup_bound = true;
  std::optional<uint64_t> deadline = facility.NextDeadlineTick();
  if (deadline && *deadline < wake_tick) {
    wake_tick = *deadline;
    backup_bound = false;
  }
  if (config_.queue_work.next_due) {
    // No due queue may wait out a full backup period just because every
    // shard parked: the earliest queue deadline bounds the sleep exactly
    // like the shard's own next soft-event deadline does. Each releasing
    // shard folds its published deadline into the gate BEFORE it can reach
    // this sleep, so the last shard to park always sees the earliest one.
    uint64_t queue_due = config_.queue_work.next_due();
    if (queue_due < wake_tick) {
      wake_tick = queue_due;
      backup_bound = false;
    }
  }
  {
    std::unique_lock<std::mutex> lock(loop.m);
    loop.gate.PrepareSleep();
    // Recheck under the flag: a command published before the gate's fence is
    // visible here; one published after it sees the sleeper flag and
    // notifies (blocking on the mutex until our wait releases it).
    if (!runtime_->remote_pending(shard) &&
        // ordering: stop is rechecked every loop iteration and Stop() takes
        // the mutex before notifying, so a relaxed read here only risks one
        // bounded sleep, never a missed shutdown.
        !stop_.load(std::memory_order_relaxed)) {
      ++loop.stats.sleeps;
      loop.cv.wait_for(lock, clock_.UntilTick(wake_tick));
    }
    loop.gate.FinishSleep();
  }
  if (backup_bound && clock_.NowTicks() >= wake_tick) {
    ++loop.stats.backup_checks;
    return runtime_->OnBackupInterrupt(shard);
  }
  return runtime_->OnTriggerState(shard, TriggerSource::kIdleLoop);
}

void ShardedRtHost::RunShard(size_t shard) {
  ShardLoop& loop = *loops_[shard];
  if (config_.shard_setup) {
    config_.shard_setup(shard);
  }
  // ordering: both stop checks are relaxed - the loop re-polls continuously
  // and the sleep path rechecks under the eventcount, so staleness costs at
  // most one extra iteration.
  while (!stop_.load(std::memory_order_relaxed)) {
    ++loop.stats.polls;
    runtime_->OnTriggerState(shard, TriggerSource::kIdleLoop);
    if (config_.shard_tick) {
      config_.shard_tick(shard);
    }
    if (config_.queue_work.poll) {
      // Serve at most one claimed queue per iteration, interleaved with the
      // shard's own trigger checks; as long as queues keep yielding packets
      // the shard stays in its loop (the `continue` skips the sleep), which
      // is how an idle shard absorbs queues from a busy one - it simply
      // keeps winning claims the busy shard has no spare iterations for.
      size_t drained = config_.queue_work.poll(shard, clock_.NowTicks());
      ++loop.stats.queue_polls;
      loop.stats.queue_packets += drained;
      if (drained > 0) {
        continue;
      }
    }
    // ordering: same relaxed-stop contract as the loop condition above.
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
    if (config_.idle_strategy == IdleStrategy::kBusyPoll) {
      continue;
    }
    if (config_.idle_work) {
      // Section 5.2: an idle CPU polls instead of halting. One idle shard at
      // a time claims the shared work; it keeps the claim while its own
      // timers are quiet and hands it back once they need service, so the
      // work migrates to whichever shard is idle.
      size_t expected = kNoIdleOwner;
      bool owner =
          // ordering: relaxed self-check - only this shard ever stores its
          // own index, so reading it back needs no synchronization.
          idle_owner_.load(std::memory_order_relaxed) == shard ||
          // ordering: acq_rel claim - acquire pairs with the release
          // handback below so the new owner sees the previous owner's
          // idle_work effects; release publishes ours when we hand back.
          idle_owner_.compare_exchange_strong(expected, shard,
                                              std::memory_order_acq_rel);
      if (owner) {
        uint64_t horizon =
            clock_.NowTicks() +
            runtime_->shard_facility(shard).ticks_per_backup_interval();
        std::optional<uint64_t> deadline =
            runtime_->shard_facility(shard).NextDeadlineTick();
        if (deadline && *deadline < horizon) {
          // ordering: release handback - publishes this owner's idle_work
          // effects to whichever shard claims the slot next (acquire CAS).
          idle_owner_.store(kNoIdleOwner, std::memory_order_release);
        } else {
          config_.idle_work();
          ++loop.stats.idle_work_runs;
          continue;  // poll again right away; no sleep while owning
        }
      }
    }
    SleepAndDispatch(shard);
  }
  // ordering: relaxed self-check + release handback, same pairing as the
  // idle-work claim above (only this shard ever stores its own index).
  if (idle_owner_.load(std::memory_order_relaxed) == shard) {
    idle_owner_.store(kNoIdleOwner, std::memory_order_release);
  }
}

// SOFTTIMER_HOT
void ShardedRtHost::LatenessProbe(void* ctx,
                                  const SoftTimerFacility::FireInfo& info) {
  auto* loop = static_cast<ShardLoop*>(ctx);
  uint64_t lateness = info.lateness_ticks();
  loop->lateness_raw.Record(lateness);
  if (!loop->isolated) {
    // Normal profile: no steal detection, every dispatch is clean.
    loop->lateness_clean.Record(lateness);
    if (loop->slo_budget != 0 && lateness > loop->slo_budget) {
      ++loop->iso.slo_violations;
    }
    return;
  }
  if (loop->check_tainted) {
    // Leading gap was a steal: this dispatch's fired_tick is preemption
    // noise, keep it out of the clean histogram entirely.
    ++loop->iso.steal_suppressed_dispatches;
    return;
  }
  // Clean so far, but a steal could still have landed between the loop-top
  // clock read and the facility's dispatch read. Buffer until the NEXT
  // loop-top read vouches for the trailing gap (sandwich rule: a dispatch
  // is clean only when the gaps on both sides of its check are clean).
  if (loop->pending_clean_count < kCleanBufferCap) {
    loop->pending_clean[loop->pending_clean_count++] = lateness;
  } else {
    ++loop->iso.steal_suppressed_dispatches;  // overflow: raw-only
  }
}

void ShardedRtHost::ResolvePendingClean(ShardLoop& loop, bool trailing_steal) {
  if (loop.pending_clean_count == 0) {
    return;
  }
  if (trailing_steal) {
    loop.iso.steal_suppressed_dispatches += loop.pending_clean_count;
  } else {
    for (size_t i = 0; i < loop.pending_clean_count; ++i) {
      uint64_t lateness = loop.pending_clean[i];
      loop.lateness_clean.Record(lateness);
      if (loop.slo_budget != 0 && lateness > loop.slo_budget) {
        ++loop.iso.slo_violations;
      }
    }
  }
  loop.pending_clean_count = 0;
}

uint64_t ShardedRtHost::CalibrateSpinGap() const {
  // Median of a short spin burst: the typical clock-read-to-clock-read cost
  // of one loop iteration. Median rather than mean so a hypervisor steal
  // landing inside the burst cannot poison the calibration.
  constexpr size_t kSamples = 1024;
  std::array<uint64_t, kSamples> gaps;
  uint64_t prev = clock_.NowTicks();
  for (size_t i = 0; i < kSamples; ++i) {
    CpuRelax();
    uint64_t now = clock_.NowTicks();
    gaps[i] = now - prev;
    prev = now;
  }
  std::nth_element(gaps.begin(), gaps.begin() + kSamples / 2, gaps.end());
  return gaps[kSamples / 2];
}

void ShardedRtHost::RunShardIsolated(size_t shard) {
  ShardLoop& loop = *loops_[shard];
  const ShardProfileConfig& prof = profiles_[shard];
  SoftTimerFacility& facility = runtime_->shard_facility(shard);
  // Startup calibration (CHRONOS-style cost model): the arm-to-fire overhead
  // of the software backup is one spin check gap, so measure it and derive
  // the two knobs from it unless the profile pins them. The steal threshold
  // is a generous multiple of the median gap - far above scheduling jitter,
  // far below any real preemption - and the compensation must be at least
  // the threshold so that any backup fired late WITHOUT a detected steal
  // would contradict the threshold, making backup_true_late structurally
  // zero under kCompensated.
  uint64_t median_gap = CalibrateSpinGap();
  uint64_t steal_threshold =
      prof.steal_threshold_ticks != 0
          ? prof.steal_threshold_ticks
          : std::max<uint64_t>(32 * std::max<uint64_t>(median_gap, 1), 4);
  uint64_t backup_period = facility.ticks_per_backup_interval();
  uint64_t compensation = 0;
  if (prof.backup == IsolatedBackup::kCompensated) {
    compensation = prof.backup_compensation_ticks != 0
                       ? prof.backup_compensation_ticks
                       : std::max<uint64_t>(steal_threshold, 16);
    // A compensation rivaling the period would make the backup fire
    // constantly; clamp and let steal classification absorb the rest.
    compensation = std::min(compensation, backup_period / 2);
  }
  loop.iso.calibrated_gap_ticks = median_gap;
  loop.iso.steal_threshold_ticks = steal_threshold;
  loop.iso.compensation_ticks = compensation;
  // Setup runs AFTER calibration so a timer it schedules (e.g. a bench's
  // self-re-arm chain) is not already overdue by the calibration burst when
  // the first check runs.
  if (config_.shard_setup) {
    config_.shard_setup(shard);
  }

  uint64_t prev_tick = clock_.NowTicks();
  // Nominal deadline of the next software backup, and the (compensated)
  // tick at which the loop actually performs it.
  uint64_t backup_deadline = prev_tick + backup_period;
  uint64_t backup_arm = backup_deadline - compensation;
  // ordering: same relaxed-stop contract as RunShard - the loop re-polls
  // continuously, so staleness costs at most one extra iteration.
  while (!stop_.load(std::memory_order_relaxed)) {
    uint64_t now = clock_.NowTicks();
    uint64_t gap = now - prev_tick;
    prev_tick = now;
    bool steal = gap > steal_threshold;
    // The previous check's dispatches were waiting on this gap's verdict.
    ResolvePendingClean(loop, steal);
    if (steal) {
      ++loop.iso.steal_events;
      loop.iso.stolen_ticks += gap;
    }
    if (gap > loop.iso.max_gap_ticks) {
      loop.iso.max_gap_ticks = gap;
    }
    loop.check_tainted = steal;
    ++loop.stats.polls;
    ++loop.iso.spin_checks;
    if (prof.backup != IsolatedBackup::kDisabled && now >= backup_arm) {
      ++loop.stats.backup_checks;
      ++loop.iso.backup_fires;
      if (now <= backup_deadline) {
        ++loop.iso.backup_on_time;
      } else if (steal) {
        ++loop.iso.backup_steal_late;
      } else {
        ++loop.iso.backup_true_late;
      }
      runtime_->OnBackupInterrupt(shard);
      // Re-arm one period out from the fire (one-shot re-arm, so a long
      // steal yields one late backup, not a burst of catch-up fires).
      backup_deadline = now + backup_period;
      backup_arm = backup_deadline - compensation;
    } else {
      runtime_->OnTriggerState(shard, TriggerSource::kIdleLoop);
    }
    if (config_.shard_tick) {
      config_.shard_tick(shard);
    }
    CpuRelax();
  }
  // No trailing gap will ever vouch for the last check's dispatches;
  // suppress them (they are in raw) rather than guess.
  ResolvePendingClean(loop, /*trailing_steal=*/true);
}

ShardedRtHost::ShardLoopStats ShardedRtHost::shard_loop_stats(
    size_t shard) const {
  ShardLoopStats s = loops_[shard]->stats;
  // ordering: stats counter; monotonic, staleness acceptable by contract.
  s.wakeups = loops_[shard]->wakeups.load(std::memory_order_relaxed);
  return s;
}

ShardedRtHost::IsolatedShardStats ShardedRtHost::isolated_shard_stats(
    size_t shard) const {
  return loops_[shard]->iso;
}

const LatencyHistogram& ShardedRtHost::shard_lateness_raw(size_t shard) const {
  return loops_[shard]->lateness_raw;
}

const LatencyHistogram& ShardedRtHost::shard_lateness_clean(
    size_t shard) const {
  return loops_[shard]->lateness_clean;
}

}  // namespace softtimer
