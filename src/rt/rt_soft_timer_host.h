// Real-time host for the soft-timer facility: run the paper's mechanism in
// an ordinary user-space event loop instead of the simulator.
//
// A DPDK-style userspace stack (or any busy event loop) has the same
// structure the paper exploits in the kernel: execution constantly passes
// through natural check points - after a batch of I/O, between work items,
// at the top of the poll loop. The application calls PollTriggerState() at
// those points; due soft events dispatch inline at function-call cost. The
// backup bound comes from SleepAndDispatch()/RunFor(), which never sleeps
// past the backup period, so the paper's T < actual < T + X + 1 guarantee
// holds even when the loop goes quiet.
//
// Single-threaded by design, like the per-CPU facility in the paper: all
// calls must come from the owning thread.

#ifndef SOFTTIMER_SRC_RT_RT_SOFT_TIMER_HOST_H_
#define SOFTTIMER_SRC_RT_RT_SOFT_TIMER_HOST_H_

#include <chrono>
#include <functional>
#include <memory>

#include "src/core/soft_timer_facility.h"
#include "src/rt/monotonic_clock_source.h"

namespace softtimer {

class RtSoftTimerHost {
 public:
  struct Config {
    uint64_t measure_hz = 1'000'000;
    uint64_t interrupt_clock_hz = 1'000;  // backup bound: 1 ms
    TimerQueueKind queue_kind = TimerQueueKind::kHashedWheel;
  };

  RtSoftTimerHost() : RtSoftTimerHost(Config{}) {}
  explicit RtSoftTimerHost(Config config);

  SoftTimerFacility& facility() { return *facility_; }
  const MonotonicClockSource& clock() const { return clock_; }

  // The application's trigger state: call this wherever your event loop
  // naturally passes (after I/O batches, between requests, ...). Costs a
  // clock read and a comparison when nothing is due. Returns handlers fired.
  size_t PollTriggerState(TriggerSource source = TriggerSource::kSyscall);

  // Blocks until the earlier of the next soft-event deadline and one backup
  // period, then performs the corresponding check. This is the idle loop +
  // backup interrupt of the paper rolled into one cooperative call.
  // Returns the number of handlers fired.
  size_t SleepAndDispatch();

  // Convenience loop: for `duration`, alternately run `work` (if any) and
  // poll; sleeps when there is no work callback. Handlers keep firing
  // throughout.
  void RunFor(std::chrono::nanoseconds duration, const std::function<void()>& work = {});

  struct Stats {
    uint64_t polls = 0;
    uint64_t sleeps = 0;
    uint64_t backup_checks = 0;  // sleeps that hit the backup bound
  };
  const Stats& stats() const { return stats_; }

 private:
  Config config_;
  MonotonicClockSource clock_;
  std::unique_ptr<SoftTimerFacility> facility_;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_RT_RT_SOFT_TIMER_HOST_H_
