#include "src/core/soft_timer_facility.h"

#include <cassert>
#include <utility>

namespace softtimer {

SoftTimerFacility::SoftTimerFacility(const ClockSource* clock, Config config)
    : clock_(clock), config_(config) {
  assert(clock_ != nullptr);
  assert(config_.interrupt_clock_hz > 0);
  assert(clock_->ResolutionHz() >= config_.interrupt_clock_hz);
  queue_ = MakeTimerQueue(config_.queue_kind);
  if (config_.degradation.enabled) {
    policy_ = std::make_unique<DegradationPolicy>(config_.degradation,
                                                  ticks_per_backup_interval());
  }
}

uint64_t SoftTimerFacility::ticks_per_backup_interval() const {
  return clock_->ResolutionHz() / config_.interrupt_clock_hz;
}

void SoftTimerFacility::Dispatch(uint64_t scheduled_tick, uint64_t delta_ticks,
                                 uint32_t tag, const Handler& handler) {
  FireInfo info;
  info.scheduled_tick = scheduled_tick;
  info.delta_ticks = delta_ticks;
  info.fired_tick = MeasureTime();
  info.source = dispatch_source_;
  info.handler_tag = tag;
  ++stats_.dispatches;
  ++stats_.dispatches_by_source[static_cast<size_t>(dispatch_source_)];
  stats_.lateness_ticks.Add(static_cast<double>(info.lateness_ticks()));
  if (dispatch_observer_) {
    dispatch_observer_(info);
  }
  handler(info);
  if (policy_) {
    ++dispatched_this_check_;
    uint64_t cost = dispatch_cost_probe_ ? dispatch_cost_probe_(info) : 0;
    policy_->OnDispatchCost(tag, cost);
  }
}

void SoftTimerFacility::RunOrDefer(const std::shared_ptr<EventState>& st) {
  bool quarantine_block = st->tag != 0 &&
                          dispatch_source_ != TriggerSource::kBackupIntr &&
                          policy_->IsQuarantined(st->tag);
  size_t cap = policy_->max_dispatches_per_check();
  bool cap_block = !quarantine_block && cap != 0 && dispatched_this_check_ >= cap;
  if (quarantine_block || cap_block) {
    policy_->NoteDeferred(quarantine_block);
    // Re-enter the queue at the original deadline; the queue clamps a past
    // deadline to one tick beyond the current expiry, so the event is
    // re-examined at the next check (carrying the batch remainder forward;
    // a quarantined tag keeps deferring until a backup check reaches it).
    TimerId tid = queue_->Schedule(st->deadline, [this, st] { RunOrDefer(st); });
    st->deferred = true;
    deferred_remap_[st->public_id] = tid;
    return;
  }
  if (st->deferred) {
    deferred_remap_.erase(st->public_id);
  }
  Dispatch(st->scheduled_tick, st->delta_ticks, st->tag, st->handler);
}

SoftEventId SoftTimerFacility::ScheduleSoftEvent(uint64_t delta_ticks, Handler handler,
                                                 uint32_t handler_tag) {
  uint64_t scheduled_tick = MeasureTime();
  // Fire when measure_time() exceeds the scheduled value by at least T + 1;
  // the +1 covers the event not being scheduled exactly on a tick boundary.
  uint64_t deadline = scheduled_tick + delta_ticks + 1;
  ++stats_.scheduled;
  TimerId tid;
  if (!policy_) {
    tid = queue_->Schedule(
        deadline, [this, scheduled_tick, delta_ticks, handler_tag,
                   handler = std::move(handler)]() {
          Dispatch(scheduled_tick, delta_ticks, handler_tag, handler);
        });
  } else {
    auto st = std::make_shared<EventState>();
    st->scheduled_tick = scheduled_tick;
    st->delta_ticks = delta_ticks;
    st->deadline = deadline;
    st->tag = handler_tag;
    st->handler = std::move(handler);
    tid = queue_->Schedule(deadline, [this, st] { RunOrDefer(st); });
    st->public_id = tid.value;
  }
  if (schedule_observer_) {
    schedule_observer_();
  }
  return SoftEventId{tid.value};
}

bool SoftTimerFacility::CancelSoftEvent(SoftEventId id) {
  bool ok = queue_->Cancel(TimerId{id.value});
  if (!ok && !deferred_remap_.empty()) {
    auto it = deferred_remap_.find(id.value);
    if (it != deferred_remap_.end()) {
      ok = queue_->Cancel(it->second);
      deferred_remap_.erase(it);
    }
  }
  if (ok) {
    ++stats_.cancelled;
  }
  return ok;
}

size_t SoftTimerFacility::OnTriggerState(TriggerSource source) {
  ++stats_.checks;
  dispatch_source_ = source;
  if (!policy_) {
    return queue_->ExpireUpTo(MeasureTime());
  }
  uint64_t now = MeasureTime();
  policy_->OnCheck(now, source, queue_->EarliestDeadline(), queue_->size());
  dispatched_this_check_ = 0;
  queue_->ExpireUpTo(now);
  return dispatched_this_check_;
}

}  // namespace softtimer
