#include "src/core/soft_timer_facility.h"

#include <cassert>
#include <type_traits>
#include <utility>

namespace softtimer {

SoftTimerFacility::SoftTimerFacility(const ClockSource* clock, Config config)
    : clock_(clock), config_(config) {
  // The whole point of the typed-node design is that these thunks stay inside
  // the handler slot's inline buffer (and on its nothrow-move inline path);
  // if either condition breaks, the schedule path silently regains a heap
  // allocation per event, so fail the build instead.
  static_assert(sizeof(DispatchThunk) <= TimerHandlerSlot::kInlineBytes &&
                    std::is_nothrow_move_constructible_v<DispatchThunk>,
                "DispatchThunk must fit the inline handler slot");
  static_assert(sizeof(PolicyThunk) <= TimerHandlerSlot::kInlineBytes &&
                    std::is_nothrow_move_constructible_v<PolicyThunk>,
                "PolicyThunk must fit the inline handler slot");
  assert(clock_ != nullptr);
  assert(config_.interrupt_clock_hz > 0);
  if (config_.max_dispatches_per_clock_read == 0) {
    config_.max_dispatches_per_clock_read = 1;  // documented minimum
  }
  assert(clock_->ResolutionHz() >= config_.interrupt_clock_hz);
  queue_ = MakeTimerQueue(config_.queue_kind);
  if (config_.degradation.enabled) {
    policy_ = std::make_unique<DegradationPolicy>(config_.degradation,
                                                  ticks_per_backup_interval());
  }
}

uint64_t SoftTimerFacility::ticks_per_backup_interval() const {
  return clock_->ResolutionHz() / config_.interrupt_clock_hz;
}

// SOFTTIMER_HOT
void SoftTimerFacility::DispatchFired(const TimerFired& fired,
                                      const Handler& handler) {
  const TimerPayload& p = *fired.payload;
  FireInfo info;
  info.scheduled_tick = p.scheduled_tick;
  info.delta_ticks = p.delta_ticks;
  // One clock read serves the whole drain batch (seeded by ExpireDue /
  // PolicyCheck); re-read every max_dispatches_per_clock_read dispatches so
  // fired_tick staleness stays bounded under pathological batch sizes.
  if (batch_reads_left_ == 0) {
    batch_fired_tick_ = MeasureTime();
    batch_reads_left_ = config_.max_dispatches_per_clock_read;
  }
  --batch_reads_left_;
  info.fired_tick = batch_fired_tick_;
  info.source = dispatch_source_;
  info.handler_tag = p.tag;
  ++stats_.dispatches;
  ++stats_.dispatches_by_source[static_cast<size_t>(dispatch_source_)];
  stats_.lateness_ticks.Add(static_cast<double>(info.lateness_ticks()));
  // A non-zero cookie on the no-policy path marks a runtime-tracked event;
  // tell the owner (before the handler, so a handler rescheduling through
  // the runtime sees a consistent table) that this cookie is now dead.
  if (p.user_data != 0 && event_retired_fn_ != nullptr && policy_ == nullptr) {
    event_retired_fn_(event_retired_ctx_, p.user_data);
  }
  if (lateness_probe_fn_ != nullptr) {
    lateness_probe_fn_(lateness_probe_ctx_, info);
  }
  if (dispatch_observer_) {
    dispatch_observer_(info);
  }
  handler(info);
  if (policy_) {
    ++dispatched_this_check_;
    uint64_t cost = dispatch_cost_probe_ ? dispatch_cost_probe_(info) : 0;
    policy_->OnDispatchCost(p.tag, cost);
  }
}

void SoftTimerFacility::RunOrDeferFired(const TimerFired& fired,
                                        Handler& handler) {
  const TimerPayload& p = *fired.payload;
  bool quarantine_block = p.tag != 0 &&
                          dispatch_source_ != TriggerSource::kBackupIntr &&
                          policy_->IsQuarantined(p.tag);
  size_t cap = policy_->max_dispatches_per_check();
  bool cap_block = !quarantine_block && cap != 0 && dispatched_this_check_ >= cap;
  if (quarantine_block || cap_block) {
    policy_->NoteDeferred(quarantine_block);
    // Defer by relinking: copy the POD payload fields into a fresh node and
    // move the handler across - no shared state, no extra allocation. The
    // queue clamps the (now past) deadline to one tick beyond the current
    // expiry, so the event is re-examined at the next check (carrying the
    // batch remainder forward; a quarantined tag keeps deferring until a
    // backup check reaches it). user_data records the public id the caller
    // holds, so cancels keep working through the remap table.
    uint64_t public_id = p.user_data != 0 ? p.user_data : fired.id.value;
    TimerPayload replacement;
    replacement.scheduled_tick = p.scheduled_tick;
    replacement.delta_ticks = p.delta_ticks;
    replacement.tag = p.tag;
    replacement.user_data = public_id;
    replacement.handler.emplace(PolicyThunk{this, std::move(handler)});
    TimerId tid = queue_->Schedule(fired.deadline_tick, std::move(replacement));
    deferred_remap_[public_id] = tid;
    return;
  }
  if (p.user_data != 0) {
    deferred_remap_.erase(p.user_data);
  }
  DispatchFired(fired, handler);
}

// SOFTTIMER_HOT
SoftEventId SoftTimerFacility::ScheduleSoftEventWithCookie(uint64_t delta_ticks,
                                                           Handler handler,
                                                           uint32_t handler_tag,
                                                           uint64_t cookie) {
  // Policy mode reuses payload.user_data for deferral remaps, so cookies are
  // a no-policy feature (the sharded runtime runs policy-free shards).
  assert(cookie == 0 || policy_ == nullptr);
  uint64_t scheduled_tick = MeasureTime();
  // Fire when measure_time() exceeds the scheduled value by at least T + 1;
  // the +1 covers the event not being scheduled exactly on a tick boundary.
  uint64_t deadline = scheduled_tick + delta_ticks + 1;
  ++stats_.scheduled;
  TimerPayload payload;
  payload.scheduled_tick = scheduled_tick;
  payload.delta_ticks = delta_ticks;
  payload.tag = handler_tag;
  payload.user_data = cookie;
  if (!policy_) {
    payload.handler.emplace(DispatchThunk{this, std::move(handler)});
    if (deadline < next_deadline_) {
      next_deadline_ = deadline;
    }
  } else {
    payload.handler.emplace(PolicyThunk{this, std::move(handler)});
  }
  TimerId tid = queue_->Schedule(deadline, std::move(payload));
  if (schedule_observer_) {
    schedule_observer_();
  }
  return SoftEventId{tid.value};
}

// SOFTTIMER_HOT
bool SoftTimerFacility::CancelSoftEvent(SoftEventId id) {
  // Cancelling destroys the payload, so read the cookie first; it is only
  // acted on when the cancel lands. No-policy mode only: policy mode reuses
  // user_data for deferral remaps, and cookies require no policy anyway.
  uint64_t cookie = policy_ == nullptr && event_retired_fn_ != nullptr
                        ? queue_->PeekUserData(TimerId{id.value})
                        : 0;
  bool ok = queue_->Cancel(TimerId{id.value});
  // Only a policy-mode deferral ever remaps an id, so the no-policy path
  // never probes the map.
  if (!ok && policy_ && !deferred_remap_.empty()) {
    ok = CancelViaDeferredRemap(id.value);
  }
  if (ok) {
    ++stats_.cancelled;
    // A cancelled cookie-carrying event is as dead as a dispatched one:
    // retire it so the owner's tracking state cannot leak.
    if (cookie != 0) {
      event_retired_fn_(event_retired_ctx_, cookie);
    }
  }
  return ok;
}

// SOFTTIMER_COLD: policy-mode deferral fallback - only reached when a
// quarantine/batch-cap deferral relinked the event under a new id, which the
// policy bounds to degraded regimes; the no-policy fast path is gated off
// this entirely (policy_ check above), so its zero-alloc contract holds.
bool SoftTimerFacility::CancelViaDeferredRemap(uint64_t id_value) {
  auto it = deferred_remap_.find(id_value);
  if (it == deferred_remap_.end()) {
    return false;
  }
  bool ok = queue_->Cancel(it->second);
  deferred_remap_.erase(it);
  return ok;
}

// SOFTTIMER_HOT
SoftEventId SoftTimerFacility::RescheduleSoftEvent(SoftEventId id,
                                                   uint64_t delta_ticks) {
  // Like cookies, rescheduling is a no-policy feature: policy mode reuses
  // payload.user_data for deferral remaps and would need the remap probe on
  // every re-arm, defeating the point of the fast path.
  assert(policy_ == nullptr);
  TimerPayload* payload = queue_->MutablePayload(TimerId{id.value});
  if (payload == nullptr) {
    return SoftEventId{};  // already fired or cancelled
  }
  // Rewrite the bookkeeping in place before the relink so both the native
  // path (payload stays put) and the emulated cancel+reschedule (payload is
  // moved into the new node) carry the fresh schedule stamp.
  uint64_t scheduled_tick = MeasureTime();
  payload->scheduled_tick = scheduled_tick;
  payload->delta_ticks = delta_ticks;
  // Same deadline rule as a fresh schedule: fire once measure_time() exceeds
  // the scheduled value by at least T + 1.
  uint64_t deadline = scheduled_tick + delta_ticks + 1;
  TimerId moved = queue_->Update(TimerId{id.value}, deadline);
  if (!moved.valid()) {
    return SoftEventId{};  // raced with expiry between the peek and the move
  }
  ++stats_.rescheduled;
  // Only lower the gate. If the event was the earliest and moved later,
  // next_deadline_ lags low, which is safe (the gate is conservative) and
  // costs at most one extra slow-path check - same policy as cancel.
  if (deadline < next_deadline_) {
    next_deadline_ = deadline;
  }
  if (schedule_observer_) {
    schedule_observer_();
  }
  return SoftEventId{moved.value};
}

// SOFTTIMER_HOT
size_t SoftTimerFacility::ExpireDue(TriggerSource source) {
  dispatch_source_ = source;
  uint64_t now = MeasureTime();
  // The expiry read doubles as the batch's fired_tick stamp (one amortized
  // clock read per drain; see Config::max_dispatches_per_clock_read).
  batch_fired_tick_ = now;
  batch_reads_left_ = config_.max_dispatches_per_clock_read;
  size_t fired = queue_->ExpireUpTo(now);
  // Refresh the gate from the queue (handlers may have scheduled or
  // cancelled; the queue's cached earliest makes this cheap).
  std::optional<uint64_t> earliest = queue_->EarliestDeadline();
  next_deadline_ = earliest ? *earliest : UINT64_MAX;
  return fired;
}

size_t SoftTimerFacility::PolicyCheck(TriggerSource source) {
  dispatch_source_ = source;
  uint64_t now = MeasureTime();
  policy_->OnCheck(now, source, queue_->EarliestDeadline(), queue_->size());
  batch_fired_tick_ = now;
  batch_reads_left_ = config_.max_dispatches_per_clock_read;
  dispatched_this_check_ = 0;
  queue_->ExpireUpTo(now);
  return dispatched_this_check_;
}

}  // namespace softtimer
