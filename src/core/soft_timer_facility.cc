#include "src/core/soft_timer_facility.h"

#include <cassert>
#include <utility>

namespace softtimer {

SoftTimerFacility::SoftTimerFacility(const ClockSource* clock, Config config)
    : clock_(clock), config_(config) {
  assert(clock_ != nullptr);
  assert(config_.interrupt_clock_hz > 0);
  assert(clock_->ResolutionHz() >= config_.interrupt_clock_hz);
  queue_ = MakeTimerQueue(config_.queue_kind);
}

uint64_t SoftTimerFacility::ticks_per_backup_interval() const {
  return clock_->ResolutionHz() / config_.interrupt_clock_hz;
}

SoftEventId SoftTimerFacility::ScheduleSoftEvent(uint64_t delta_ticks, Handler handler) {
  uint64_t scheduled_tick = MeasureTime();
  // Fire when measure_time() exceeds the scheduled value by at least T + 1;
  // the +1 covers the event not being scheduled exactly on a tick boundary.
  uint64_t deadline = scheduled_tick + delta_ticks + 1;
  ++stats_.scheduled;
  TimerId tid = queue_->Schedule(
      deadline,
      [this, scheduled_tick, delta_ticks, handler = std::move(handler)]() {
        FireInfo info;
        info.scheduled_tick = scheduled_tick;
        info.delta_ticks = delta_ticks;
        info.fired_tick = MeasureTime();
        info.source = dispatch_source_;
        ++stats_.dispatches;
        ++stats_.dispatches_by_source[static_cast<size_t>(dispatch_source_)];
        stats_.lateness_ticks.Add(static_cast<double>(info.lateness_ticks()));
        if (dispatch_observer_) {
          dispatch_observer_(info);
        }
        handler(info);
      });
  if (schedule_observer_) {
    schedule_observer_();
  }
  return SoftEventId{tid.value};
}

bool SoftTimerFacility::CancelSoftEvent(SoftEventId id) {
  bool ok = queue_->Cancel(TimerId{id.value});
  if (ok) {
    ++stats_.cancelled;
  }
  return ok;
}

size_t SoftTimerFacility::OnTriggerState(TriggerSource source) {
  ++stats_.checks;
  dispatch_source_ = source;
  return queue_->ExpireUpTo(MeasureTime());
}

}  // namespace softtimer
