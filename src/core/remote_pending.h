// RemotePendingFlag: the publish/drain flag protocol that sits above the
// per-producer SPSC command rings in ShardedSoftTimerRuntime.
//
// One flag per shard. Producers push a command into their ring and then
// Publish(); the shard owner polls AnyPendingRelaxed() in its trigger-state
// check and, when it reads non-zero, runs BeginDrain() followed by a sweep
// of every ring, calling Reraise() if a bounded sweep left commands behind.
//
// The protocol is a store-buffering (Dekker) shape, and its orderings are
// exactly the PR 3 review fix:
//
//   producer:  ring.TryPush(cmd)        owner:  flag.store(0)
//              flag.store(1, seq_cst)           fence(seq_cst)
//                                               sweep rings
//
// Without the seq_cst pairing, the owner's flag clear can sit in its store
// buffer while its ring reads run early: a concurrent push+publish lands in
// between, the sweep misses the command, and the owner's buffered 0 then
// overwrites the producer's 1 - the command is stranded until an unrelated
// later publish. With it, either the sweep observes the push (drains now) or
// the producer's store is ordered after the clear (flag stays 1; the next
// check drains). tests/model_check_test.cc proves both directions under the
// model checker: the shipped orderings pass every explored interleaving, and
// WeakDrainFenceOrdering (the fence demoted to release) reproduces the
// stranded-command race. The publish side's seq_cst strength is required by
// the C++ memory model but is not separable under the checker's TSO lens
// (store-store order is preserved there); see DESIGN.md section 11.
//
// Traits/Ordering parameters: see src/core/atomics_traits.h. Production uses
// the defaults; never override Ordering outside the model-check suite.

#ifndef SOFTTIMER_SRC_CORE_REMOTE_PENDING_H_
#define SOFTTIMER_SRC_CORE_REMOTE_PENDING_H_

#include <atomic>
#include <cstdint>

#include "src/core/atomics_traits.h"

namespace softtimer {

// Shipped orderings for the publish/drain protocol (the PR 3 review fix).
struct RemotePendingOrdering {
  // seq_cst, not release: pairs with kDrainFence so a publish racing a drain
  // sweep either has its command popped or leaves the flag raised.
  static constexpr std::memory_order kPublishStore = std::memory_order_seq_cst;
  // ordering: the clear itself needs no ordering; the fence right after it
  // provides the store-load ordering the protocol depends on.
  static constexpr std::memory_order kClearStore = std::memory_order_relaxed;
  // Store-load fence between the flag clear and the ring sweep; pairs with
  // kPublishStore (see the header comment for the stranded-command scenario).
  static constexpr std::memory_order kDrainFence = std::memory_order_seq_cst;
  // ordering: relaxed poll; a stale 0 only delays the drain until the
  // producer's seq_cst publish becomes visible, never loses it.
  static constexpr std::memory_order kPollLoad = std::memory_order_relaxed;
  // ordering: re-raise runs on the owner thread that also drains; it only
  // needs to be visible to the owner's own next poll.
  static constexpr std::memory_order kReraiseStore = std::memory_order_relaxed;
};

template <typename Traits = StdAtomicsTraits,
          typename Ordering = RemotePendingOrdering>
class RemotePendingFlag {
 public:
  // Producer side, after a successful ring push: raise the flag so the
  // owner's next trigger-state check sweeps the rings.
  void Publish() { flag_.store(1, Ordering::kPublishStore); }

  // Owner-side cheap poll (the only cost the sharded runtime adds to a
  // shard's nothing-due trigger check).
  bool AnyPendingRelaxed() const {
    return flag_.load(Ordering::kPollLoad) != 0;
  }

  // Owner side, immediately before a ring sweep: clear the flag, then fence
  // so the sweep's ring reads cannot run ahead of the clear (a command
  // published mid-sweep either gets popped or re-raises the flag for the
  // next check - never both missed).
  void BeginDrain() {
    flag_.store(0, Ordering::kClearStore);
    Traits::ThreadFence(Ordering::kDrainFence);
  }

  // Owner side, after a bounded sweep that left commands queued: keep the
  // flag raised so the next check continues the drain.
  void Reraise() { flag_.store(1, Ordering::kReraiseStore); }

 private:
  typename Traits::template Atomic<uint32_t> flag_{0};
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_REMOTE_PENDING_H_
