// ShardedSoftTimerRuntime - N per-core soft-timer facilities plus lock-free
// cross-core scheduling.
//
// The paper's facility is per-CPU by construction: trigger states fire on
// the core that is already executing, so an SMP deployment is a set of
// independent per-core facilities plus a way to schedule/cancel events on a
// remote core. This runtime owns `num_shards` SoftTimerFacility shards (each
// keeping the single-core zero-allocation hot path and `next_deadline_` fast
// gate untouched) and, for the cross-core part, one bounded lock-free SPSC
// command ring per (producer thread, target shard) pair.
//
// Threading model:
//  * Each shard has exactly one OWNER thread: the only thread that may call
//    OnTriggerState / OnBackupInterrupt / ScheduleOnShard / CancelOnShard /
//    DrainRemote for that shard.
//  * Any other thread first calls RegisterProducer() once, then uses its
//    ProducerToken with ScheduleCrossCore / CancelCrossCore. Commands are
//    drained at the target shard's trigger states, so remote work always
//    executes on the owning core - the slab, wheel, and facility state stay
//    single-threaded and the paper's hot path stays intact.
//
// Steady-state costs:
//  * Local nothing-due trigger check: one relaxed load of the shard's
//    remote-pending flag + the facility fast gate (clock read + compare).
//    No mutex, no CAS, no fence on this path.
//  * Cross-core schedule: one SPSC push (slot move + release store) plus a
//    seq_cst store of the pending flag (paired with a fence in the drain
//    sweep so a publish racing a drain is never stranded). Zero heap
//    allocations when the handler fits std::function's inline buffer, like
//    the local path.
//
// Ids: every id this runtime returns carries its shard in the top byte (see
// timer_slab.h). Locally-scheduled events return the facility's slab id with
// the shard ORed in; cross-core schedules return a REMOTE id (remote bit set,
// {producer, sequence} in the low bits) that the target shard maps to the
// eventual slab id in a per-shard open-addressing table (RemoteIdMap,
// allocation-free in steady state). The facility's cookie/retire hook erases
// the table entry when the event fires or is cancelled (through any cancel
// path, including a direct facility CancelSoftEvent), so the table tracks
// exactly the live remote events.
//
// Cross-core cancel semantics: a cancel command is applied when it drains.
// Commands from one producer drain in FIFO order, so a producer can always
// cancel what it scheduled; a cancel racing ahead of a *different*
// producer's schedule command is a no-op (the event fires). Results are
// reported through ShardStats, not a return value - the operation is
// asynchronous by nature.

#ifndef SOFTTIMER_SRC_CORE_SHARDED_SOFT_TIMER_RUNTIME_H_
#define SOFTTIMER_SRC_CORE_SHARDED_SOFT_TIMER_RUNTIME_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/remote_pending.h"
#include "src/core/soft_timer_facility.h"
#include "src/core/spsc_ring.h"
#include "src/core/trigger.h"

namespace softtimer {

// Open-addressing hash map from remote id -> local slab id, owned by one
// shard (single-threaded). Linear probing with backward-shift deletion; the
// table only allocates when it grows past its high-water mark, so
// steady-state insert/erase cycles are allocation-free. Key 0 is reserved
// (remote ids always have the remote bit set, so no real key is 0).
class RemoteIdMap {
 public:
  void Insert(uint64_t key, uint64_t value);
  // Returns the mapped value or 0 when absent.
  uint64_t Find(uint64_t key) const;
  bool Erase(uint64_t key);
  size_t size() const { return size_; }
  size_t capacity() const { return table_.size(); }

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t value = 0;
  };

  static size_t Mix(uint64_t key) {
    // splitmix64 finalizer: remote ids differ mostly in low sequence bits.
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(key ^ (key >> 31));
  }
  size_t SlotFor(uint64_t key) const { return Mix(key) & (table_.size() - 1); }
  // Probe-and-place without the load-factor check; shared by Insert and the
  // rehash loop in Grow so the two never recurse into each other.
  void InsertNoGrow(uint64_t key, uint64_t value);
  void Grow();

  std::vector<Entry> table_;
  size_t size_ = 0;
};

// Bounded retry-with-backoff policy for
// ShardedSoftTimerRuntime::ScheduleCrossCoreWithRetry.
struct CrossCoreRetry {
  // Push attempts before giving up (>= 1).
  uint32_t max_attempts = 8;
  // Spin iterations after the first rejection; doubles per rejection up
  // to spin_cap. Spinning (rather than sleeping) matches the expected
  // stall: the consumer shard drains whole rings at its next trigger
  // state, microseconds away. Once the spin caps the helper yields the
  // timeslice between attempts instead - if the ring still has not drained
  // the consumer is likely preempted (or time-sharing this core), and
  // burning further cycles only delays it.
  uint32_t spin_base = 64;
  uint32_t spin_cap = 8192;
};

class ShardedSoftTimerRuntime {
 public:
  struct Config {
    // Per-core facility shards; at most kTimerIdMaxShards (the shard byte).
    size_t num_shards = 1;
    // Producer threads that may be registered over the runtime's lifetime
    // (rings are preallocated per (producer, shard) pair). At most 256.
    size_t max_producers = 8;
    // Capacity of each command ring, rounded up to a power of two.
    size_t ring_capacity = 1024;
    // Per-shard facility configuration. Degradation must stay disabled: the
    // sharded runtime relies on the no-policy fast gate and on the payload
    // cookie field (which policy mode reuses for deferral remaps).
    SoftTimerFacility::Config facility;
  };

  ShardedSoftTimerRuntime(const ClockSource* clock, Config config);
  ~ShardedSoftTimerRuntime();

  ShardedSoftTimerRuntime(const ShardedSoftTimerRuntime&) = delete;
  ShardedSoftTimerRuntime& operator=(const ShardedSoftTimerRuntime&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const ClockSource& clock() const { return *clock_; }

  // The shard's facility, for owner-thread use (introspection, observers,
  // direct scheduling; prefer ScheduleOnShard so ids carry the shard byte).
  SoftTimerFacility& shard_facility(size_t shard) {
    return *shards_[shard]->facility;
  }
  const SoftTimerFacility& shard_facility(size_t shard) const {
    return *shards_[shard]->facility;
  }

  // --- Producer registration -------------------------------------------
  class ProducerToken {
   public:
    ProducerToken() = default;
    bool valid() const { return index_ != kInvalid; }
    size_t index() const { return index_; }
    // Cross-core push attempts rejected because the target ring was full
    // (one per attempt, so a retried schedule can count several times).
    uint64_t ring_full_rejects() const { return ring_full_rejects_; }
    // ScheduleCrossCoreWithRetry calls that exhausted every attempt.
    uint64_t retry_exhausted() const { return retry_exhausted_; }

   private:
    friend class ShardedSoftTimerRuntime;
    static constexpr size_t kInvalid = static_cast<size_t>(-1);
    size_t index_ = kInvalid;
    uint64_t next_seq_ = 0;
    uint64_t ring_full_rejects_ = 0;
    uint64_t retry_exhausted_ = 0;
  };

  // Registers the calling thread as a command producer. Thread-safe.
  // Returns an invalid token when max_producers are already registered.
  // A shard owner thread that wants to schedule onto *other* shards
  // registers too; its own shard stays reachable through the local calls.
  ProducerToken RegisterProducer();

  // --- Owner-thread API (one thread per shard) --------------------------
  // Local schedule on the calling owner's shard: the facility fast path,
  // plus the shard byte ORed into the returned id.
  SoftEventId ScheduleOnShard(size_t shard, uint64_t delta_ticks,
                              SoftTimerFacility::Handler handler,
                              uint32_t handler_tag = 0);

  // Cancels an id (local or remote) that targets `shard`. Returns false for
  // ids of other shards (use CancelCrossCore), stale ids, or remote ids
  // whose schedule command has not drained yet.
  bool CancelOnShard(size_t shard, SoftEventId id);

  // Re-arms an id (local or remote) that targets `shard` to fire
  // `delta_ticks` from now, preserving its handler and tag - the facility's
  // RescheduleSoftEvent with the runtime's id plumbing on top. Returns the
  // id naming the event afterwards: a remote id is returned unchanged (the
  // shard's remote-id table is rebound underneath it, so the producer's
  // handle stays live), a local id may be renamed on backends without a
  // native update path. Invalid id when the event already fired, was
  // cancelled, or targets another shard.
  SoftEventId RescheduleOnShard(size_t shard, SoftEventId id,
                                uint64_t delta_ticks);

  // The shard's trigger-state check: drains remote commands when the
  // pending flag says any exist, then runs the facility check. When nothing
  // is due and no commands are pending this is one relaxed load + clock
  // read + compare.
  // SOFTTIMER_HOT
  size_t OnTriggerState(size_t shard, TriggerSource source) {
    Shard& s = *shards_[shard];
    if (s.remote_pending.AnyPendingRelaxed()) {
      DrainRemote(shard);
    }
    return s.facility->OnTriggerState(source);
  }

  size_t OnBackupInterrupt(size_t shard) {
    return OnTriggerState(shard, TriggerSource::kBackupIntr);
  }

  // Applies every queued command for `shard` now; returns commands applied.
  size_t DrainRemote(size_t shard);

  // --- Producer API (any registered thread) -----------------------------
  // Schedules `handler` on `shard` through the command ring. Returns the
  // remote id, or an invalid id when the (producer, shard) ring is full
  // (bounded backpressure; counted in the token's ring_full_rejects).
  // `handler` is consumed even on a full-ring rejection; callers that want
  // to retry the same handler use TryScheduleCrossCore or the retry helper
  // below. The delay counts from now (enqueue time): the drain re-anchors
  // the deadline at enqueue_tick + delta, so ring residency does not
  // stretch T.
  SoftEventId ScheduleCrossCore(ProducerToken& token, size_t shard,
                                uint64_t delta_ticks,
                                SoftTimerFacility::Handler handler,
                                uint32_t handler_tag = 0);

  // Non-consuming variant: on a full-ring rejection the handler is moved
  // back into `handler` (intact), the token's ring_full_rejects counter is
  // bumped, and the invalid id tells the caller the push did not land — so
  // an RTO burst that overruns the ring can retry the SAME handler after
  // backing off instead of silently dropping the timer.
  SoftEventId TryScheduleCrossCore(ProducerToken& token, size_t shard,
                                   uint64_t delta_ticks,
                                   SoftTimerFacility::Handler& handler,
                                   uint32_t handler_tag = 0);

  // Producer helper: TryScheduleCrossCore with bounded exponential spin
  // backoff between attempts. Returns the remote id, or an invalid id when
  // every attempt found the ring full (the handler is consumed only on
  // success; on give-up it is destroyed, matching ScheduleCrossCore).
  // Counted per push attempt in ring_full_rejects and per helper give-up
  // in the token's retry_exhausted counter.
  SoftEventId ScheduleCrossCoreWithRetry(ProducerToken& token, size_t shard,
                                         uint64_t delta_ticks,
                                         SoftTimerFacility::Handler handler,
                                         uint32_t handler_tag = 0,
                                         CrossCoreRetry retry = {});

  // Enqueues a cancel for an id returned by either schedule path. Returns
  // true when the command was enqueued (not when the cancel lands - see the
  // header comment for the async semantics).
  bool CancelCrossCore(ProducerToken& token, SoftEventId id);

  // Enqueues a re-arm for a REMOTE id (one returned by a cross-core
  // schedule): when the command drains, the target shard reschedules the
  // event `delta_ticks` from the enqueue tick and rebinds its remote-id
  // table, so this same id keeps naming the event afterwards. Local ids are
  // rejected (a backend without native update renames them on reschedule,
  // and an async command has no way to hand the new name back); owner
  // threads use RescheduleOnShard instead. Returns true when the command
  // was enqueued, with the usual async semantics: a re-arm racing the
  // event's own dispatch is a no-op counted in remote_reschedule_misses.
  bool RescheduleCrossCore(ProducerToken& token, SoftEventId id,
                           uint64_t delta_ticks);

  // --- Wakeup integration ----------------------------------------------
  // Invoked (from the producer thread) after a command is published to a
  // shard, so a host can wake that shard's sleeping owner. Raw pointer +
  // context: installing and firing it never allocates.
  using WakeFn = void (*)(void* ctx, size_t shard);
  void set_wake_hook(WakeFn fn, void* ctx) {
    wake_fn_ = fn;
    wake_ctx_ = ctx;
  }

  // True when `shard` has undrained commands (relaxed; owner-thread hint).
  bool remote_pending(size_t shard) const {
    return shards_[shard]->remote_pending.AnyPendingRelaxed();
  }

  // --- Maintenance / introspection --------------------------------------
  // Trims the shard's slab storage (owner thread). Returns chunks released.
  size_t TrimShardStorage(size_t shard) {
    return shards_[shard]->facility->TrimSlabStorage();
  }

  struct ShardStats {
    uint64_t drains = 0;             // drain sweeps that applied >= 1 command
    uint64_t remote_scheduled = 0;   // schedule commands applied
    uint64_t remote_cancelled = 0;   // cancel commands that hit a live event
    uint64_t remote_cancel_misses = 0;
    uint64_t remote_rescheduled = 0;  // update commands that re-armed an event
    uint64_t remote_reschedule_misses = 0;
    size_t remote_live = 0;          // live entries in the remote-id table
    // Snapshot of this shard facility's dispatch-lateness distribution
    // (FireInfo::lateness_ticks), so per-shard latency health is readable
    // through one accessor without reaching into the facility. Hosts that
    // need full percentiles install a facility lateness probe feeding a
    // LatencyHistogram instead (see ShardedRtHost).
    SummaryStats lateness_ticks;
  };
  // Owner-thread (or quiesced) reads only.
  ShardStats shard_stats(size_t shard) const {
    ShardStats s = shards_[shard]->stats;
    s.remote_live = shards_[shard]->remote_ids.size();
    s.lateness_ticks = shards_[shard]->facility->stats().lateness_ticks;
    return s;
  }

  // Facility + runtime counters summed across shards, with the per-source
  // dispatch attribution (TriggerSource) preserved. Quiesced reads only.
  struct RuntimeStats {
    uint64_t checks = 0;
    uint64_t dispatches = 0;
    uint64_t scheduled = 0;
    uint64_t cancelled = 0;
    uint64_t rescheduled = 0;
    std::array<uint64_t, kNumTriggerSources> dispatches_by_source{};
    uint64_t remote_scheduled = 0;
    uint64_t remote_cancelled = 0;
    uint64_t remote_rescheduled = 0;
    uint32_t slab_capacity = 0;
    uint32_t slab_live = 0;
  };
  RuntimeStats AggregateStats() const;

 private:
  struct Command {
    enum class Op : uint8_t { kNone, kSchedule, kCancel, kUpdate };
    Op op = Op::kNone;
    uint32_t tag = 0;
    uint64_t id = 0;           // remote id (schedule) or cancel target
    uint64_t delta_ticks = 0;
    uint64_t enqueue_tick = 0;
    SoftTimerFacility::Handler handler;
  };

  // Everything one shard's owner thread touches, cache-line separated from
  // its neighbours.
  struct alignas(kCacheLineBytes) Shard {
    std::unique_ptr<SoftTimerFacility> facility;
    RemoteIdMap remote_ids;
    ShardStats stats;
    // Published (seq_cst) by producers after pushing a command; cleared +
    // fenced by the owner before a drain sweep so the clear cannot overwrite
    // a racing publish whose command the sweep missed. The full protocol and
    // its orderings live in src/core/remote_pending.h (model-checked by
    // tests/model_check_test.cc).
    RemotePendingFlag<> remote_pending;
    // One SPSC ring per producer slot.
    std::vector<std::unique_ptr<SpscRing<Command>>> rings;
  };

  static void OnEventRetired(void* ctx, uint64_t cookie) {
    static_cast<Shard*>(ctx)->remote_ids.Erase(cookie);
  }

  // Applies a drained command on the owner thread.
  void ApplyCommand(Shard& shard, Command&& cmd);
  bool ApplyCancel(Shard& shard, uint64_t id_value);
  SoftEventId ApplyReschedule(Shard& shard, uint64_t id_value,
                              uint64_t delta_ticks);

  // Raises the shard's pending flag and fires the wake hook (called by a
  // producer after a successful ring push).
  void PublishToShard(size_t shard, ProducerToken& token);

  const ClockSource* clock_;
  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  WakeFn wake_fn_ = nullptr;
  void* wake_ctx_ = nullptr;
  std::mutex producer_mutex_;  // registration only, never on a data path
  size_t producers_registered_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_SHARDED_SOFT_TIMER_RUNTIME_H_
