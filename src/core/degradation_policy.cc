#include "src/core/degradation_policy.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace softtimer {

DegradationPolicy::DegradationPolicy(Config config, uint64_t ticks_per_backup_interval)
    : config_(config), x_(ticks_per_backup_interval) {
  assert(x_ > 0);
  assert(config_.max_backup_rate_multiplier >= 1);
  assert(config_.deescalate_after_healthy_intervals >= 1);
  assert(config_.quarantine_after_strikes >= 1);
  assert(config_.quarantine_release_after_clean >= 1);
}

void DegradationPolicy::AddDroughtListener(std::function<void(bool)> fn) {
  drought_listeners_.push_back(std::move(fn));
}

void DegradationPolicy::NotifyDrought(bool entering) {
  if (entering) {
    ++stats_.droughts_detected;
  } else {
    ++stats_.droughts_ended;
  }
  for (auto& fn : drought_listeners_) {
    fn(entering);
  }
}

void DegradationPolicy::Escalate(uint64_t now_tick) {
  // At most one escalation step per backup interval, so a burst of unhealthy
  // checks within one interval cannot jump straight to the cap.
  if (escalated_once_ && now_tick - last_escalate_tick_ < x_) {
    return;
  }
  uint32_t next = std::min(config_.max_backup_rate_multiplier, multiplier_ * 2);
  healthy_streak_ = 0;
  last_escalate_tick_ = now_tick;
  escalated_once_ = true;
  if (next == multiplier_) {
    return;  // already at the cap
  }
  bool was_nominal = multiplier_ == 1;
  multiplier_ = next;
  ++stats_.escalations;
  if (was_nominal) {
    NotifyDrought(true);
  }
}

void DegradationPolicy::MaybeDeescalate() {
  if (multiplier_ == 1 || healthy_streak_ < config_.deescalate_after_healthy_intervals) {
    return;
  }
  multiplier_ /= 2;
  ++stats_.deescalations;
  healthy_streak_ = 0;
  if (multiplier_ == 1) {
    NotifyDrought(false);
  }
}

void DegradationPolicy::OnCheck(uint64_t now_tick, TriggerSource source,
                                std::optional<uint64_t> earliest_deadline, size_t pending) {
  (void)source;
  uint64_t interval = now_tick / x_;
  if (!have_interval_) {
    have_interval_ = true;
    current_interval_ = interval;
    checks_in_interval_ = 0;
  }
  if (interval != current_interval_) {
    // The interval we just completed, plus any skipped entirely (a skipped
    // interval means no check of any kind ran for a full backup period).
    bool skipped = interval - current_interval_ > 1;
    bool sparse = checks_in_interval_ < config_.density_floor_checks_per_interval;
    if ((sparse || skipped) && pending > 0) {
      Escalate(now_tick);
    } else {
      ++healthy_streak_;
      MaybeDeescalate();
    }
    current_interval_ = interval;
    checks_in_interval_ = 0;
  }
  ++checks_in_interval_;

  if (earliest_deadline && now_tick > *earliest_deadline) {
    double age = static_cast<double>(now_tick - *earliest_deadline);
    if (age > config_.backlog_age_factor * static_cast<double>(x_)) {
      Escalate(now_tick);
    }
  }
}

void DegradationPolicy::OnDispatchCost(uint32_t handler_tag, uint64_t cost_ticks) {
  if (handler_tag == 0 || config_.handler_budget_ticks == 0) {
    return;
  }
  auto it = handlers_.find(handler_tag);
  HandlerRecord& h =
      it != handlers_.end() ? it->second : InternHandler(handler_tag);
  if (cost_ticks >= config_.handler_budget_ticks) {
    ++stats_.budget_overruns;
    h.clean_streak = 0;
    if (!h.quarantined && ++h.strikes >= config_.quarantine_after_strikes) {
      h.quarantined = true;
      ++quarantined_count_;
      ++stats_.quarantines;
    }
  } else {
    h.strikes = 0;
    if (h.quarantined && ++h.clean_streak >= config_.quarantine_release_after_clean) {
      h.quarantined = false;
      h.clean_streak = 0;
      --quarantined_count_;
      ++stats_.releases;
    }
  }
}

// SOFTTIMER_COLD: one-time handler-record interning - a tag allocates its
// record on first sight only; every later dispatch-cost report for that tag
// takes the find() hit above and stays allocation-free.
DegradationPolicy::HandlerRecord& DegradationPolicy::InternHandler(
    uint32_t handler_tag) {
  return handlers_[handler_tag];
}

void DegradationPolicy::NoteDeferred(bool quarantine) {
  if (quarantine) {
    ++stats_.deferred_quarantine;
  } else {
    ++stats_.deferred_batch_cap;
  }
}

bool DegradationPolicy::IsQuarantined(uint32_t handler_tag) const {
  if (quarantined_count_ == 0) {
    return false;
  }
  auto it = handlers_.find(handler_tag);
  return it != handlers_.end() && it->second.quarantined;
}

void DegradationPolicy::Release(uint32_t handler_tag) {
  auto it = handlers_.find(handler_tag);
  if (it == handlers_.end() || !it->second.quarantined) {
    return;
  }
  it->second = HandlerRecord{};
  --quarantined_count_;
  ++stats_.releases;
}

}  // namespace softtimer
