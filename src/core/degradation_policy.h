// DegradationPolicy - graceful-degradation control for the soft-timer
// facility.
//
// The paper's bound T < ActualEventTime < T + X + 1 silently assumes a
// healthy host: trigger states keep arriving, the backup interrupt never
// slips, and handlers return quickly. This policy watches for the regimes
// where those assumptions break and drives the facility's (and its host's)
// responses:
//
//  * Trigger drought / backup slip - the policy tracks the density of
//    checks per backup interval and the age of the overdue backlog. When
//    density falls below a floor while events are pending, or the backlog
//    age exceeds backlog_age_factor * X, it escalates the backup-interrupt
//    rate multiplier (the host reprograms its periodic timer to
//    interrupt_clock_hz * multiplier - the paper's own safety net, turned
//    up). De-escalation needs a streak of healthy intervals (hysteresis),
//    so a single recovered interval does not flap the rate back down.
//
//  * Handler overrun - each dispatch's cost (reported by the host) is
//    checked against a per-dispatch budget. A handler tag that blows the
//    budget `quarantine_after_strikes` times in a row is quarantined: its
//    events are deferred to backup-interrupt dispatches only, so a runaway
//    handler cannot stall trigger-state batches. A quarantined tag is
//    released automatically after a streak of in-budget dispatches, or
//    manually via Release().
//
//  * Overdue-batch livelock - max_dispatches_per_check caps how many
//    handlers one check may invoke; the facility carries the remainder to
//    the next trigger state.
//
// The policy is pure tick-domain arithmetic: no clock, no allocation on the
// per-check path, fully deterministic.

#ifndef SOFTTIMER_SRC_CORE_DEGRADATION_POLICY_H_
#define SOFTTIMER_SRC_CORE_DEGRADATION_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/trigger.h"

namespace softtimer {

class DegradationPolicy {
 public:
  struct Config {
    // Master switch; the facility only instantiates a policy when true, so
    // the happy path of a non-degraded facility pays nothing.
    bool enabled = false;

    // --- Drought / backup-slip detection --------------------------------
    // Minimum checks per backup interval considered healthy. Below this
    // (with events pending), the backup rate escalates.
    uint32_t density_floor_checks_per_interval = 4;
    // Escalate when the earliest pending deadline is more than
    // backlog_age_factor * X ticks overdue.
    double backlog_age_factor = 2.0;
    // Backup-rate multiplier doubles per escalation up to this cap.
    uint32_t max_backup_rate_multiplier = 8;
    // Consecutive healthy intervals required before each halving of the
    // multiplier (hysteresis).
    uint32_t deescalate_after_healthy_intervals = 4;

    // --- Handler budget / quarantine ------------------------------------
    // Per-dispatch handler cost budget in measurement ticks; 0 disables
    // budget enforcement. Costs are whatever the host reports via the
    // facility's dispatch-cost probe.
    uint64_t handler_budget_ticks = 0;
    // Consecutive over-budget dispatches before a tag is quarantined.
    uint32_t quarantine_after_strikes = 3;
    // Consecutive in-budget dispatches before a quarantined tag is
    // released.
    uint32_t quarantine_release_after_clean = 8;

    // --- Batch cap -------------------------------------------------------
    // Max handlers dispatched per OnTriggerState call; 0 = unlimited.
    // Remainder is carried to the next check.
    size_t max_dispatches_per_check = 0;
  };

  struct Stats {
    uint64_t escalations = 0;
    uint64_t deescalations = 0;
    uint64_t droughts_detected = 0;   // multiplier left 1
    uint64_t droughts_ended = 0;      // multiplier returned to 1
    uint64_t budget_overruns = 0;     // dispatches costing >= budget
    uint64_t quarantines = 0;
    uint64_t releases = 0;
    uint64_t deferred_quarantine = 0; // dispatch deferrals: quarantined tag
    uint64_t deferred_batch_cap = 0;  // dispatch deferrals: batch cap hit
    uint64_t connection_resets = 0;   // transport give-ups (see below)
  };

  // `ticks_per_backup_interval` is the paper's X at the *base* (unescalated)
  // backup rate; density and backlog ages are measured against it.
  DegradationPolicy(Config config, uint64_t ticks_per_backup_interval);

  // Called by the facility at the top of every OnTriggerState, before
  // expiry. `earliest_deadline` / `pending` describe the queue at entry.
  void OnCheck(uint64_t now_tick, TriggerSource source,
               std::optional<uint64_t> earliest_deadline, size_t pending);

  // Called by the facility after each handler returns, with the dispatch
  // cost the host reported (0 when no probe is installed). Tag 0 is the
  // anonymous tag and is exempt from budget enforcement.
  void OnDispatchCost(uint32_t handler_tag, uint64_t cost_ticks);

  // Deferral accounting (called by the facility when it defers a dispatch).
  void NoteDeferred(bool quarantine);

  bool IsQuarantined(uint32_t handler_tag) const;
  // Manual release path; clears the tag's strike history.
  void Release(uint32_t handler_tag);

  // Current backup-rate multiplier the host should apply (1 = nominal).
  uint32_t backup_rate_multiplier() const { return multiplier_; }
  bool in_drought() const { return multiplier_ > 1; }
  size_t max_dispatches_per_check() const { return config_.max_dispatches_per_check; }
  uint64_t handler_budget_ticks() const { return config_.handler_budget_ticks; }
  size_t quarantined_count() const { return quarantined_count_; }

  // Transport-layer give-up report: a retransmission engine exhausted its
  // retry budget on some connection and reset it. The policy only counts
  // these today (connection resets under injected loss are expected and
  // must not drive backup-rate escalation - the timers themselves are
  // firing on time), but routing the signal through here keeps every
  // degradation decision observable at one place.
  void NoteConnectionReset() { ++stats_.connection_resets; }

  // Listeners fire on drought transitions: entering=true when the
  // multiplier first leaves 1, entering=false when it returns to 1.
  // Downstream recovery hooks (e.g. PollGovernor::ResetRate) attach here.
  void AddDroughtListener(std::function<void(bool entering)> fn);

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct HandlerRecord {
    uint32_t strikes = 0;       // consecutive over-budget dispatches
    uint32_t clean_streak = 0;  // consecutive in-budget dispatches
    bool quarantined = false;
  };

  void Escalate(uint64_t now_tick);
  void MaybeDeescalate();
  void NotifyDrought(bool entering);
  // First sight of a handler tag: inserts its record (the only allocating
  // step on the dispatch-cost path; see the definition's SOFTTIMER_COLD).
  HandlerRecord& InternHandler(uint32_t handler_tag);

  Config config_;
  uint64_t x_;  // base ticks per backup interval

  // Check-density tracking, bucketed by backup interval index.
  bool have_interval_ = false;
  uint64_t current_interval_ = 0;
  uint64_t checks_in_interval_ = 0;

  uint32_t multiplier_ = 1;
  uint32_t healthy_streak_ = 0;
  uint64_t last_escalate_tick_ = 0;
  bool escalated_once_ = false;

  std::unordered_map<uint32_t, HandlerRecord> handlers_;
  size_t quarantined_count_ = 0;
  std::vector<std::function<void(bool)>> drought_listeners_;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_DEGRADATION_POLICY_H_
