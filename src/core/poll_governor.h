// PollGovernor - adaptive poll-interval control for soft-timer network
// polling (Section 4.2).
//
//   "In general, the soft timer poll interval can be dynamically chosen so as
//    to attempt to find a certain number of packets per poll, on average. We
//    call this number the aggregation quota."
//
// The governor estimates the packet arrival rate as a ratio of sums
// (packets found / time elapsed) over a sliding window of recent polls and
// sets the interval to quota / rate, clamped to [min_interval,
// max_interval]. The ratio-of-sums estimator stays unbiased under the bursty
// arrival patterns of closed-loop web clients, where per-poll packet counts
// alternate between zero and whole convoys (an EWMA of per-poll ratios does
// not).

#ifndef SOFTTIMER_SRC_CORE_POLL_GOVERNOR_H_
#define SOFTTIMER_SRC_CORE_POLL_GOVERNOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/stats/rate_ewma.h"

namespace softtimer {

class PollGovernor {
 public:
  struct Config {
    // Desired average packets found per poll.
    double aggregation_quota = 1.0;
    // Interval clamp (ticks). min is typically the line-rate packet
    // interval; max the backup-interrupt period.
    uint64_t min_interval_ticks = 1;
    uint64_t max_interval_ticks = 1'000;
    // Starting interval.
    uint64_t initial_interval_ticks = 100;
    // Sliding-window length (polls) for the rate estimate.
    size_t window_polls = 32;
    // EWMA weight for the found-per-poll diagnostic.
    double ewma_alpha = 0.25;
    // Per-step multiplicative bound on interval change.
    double max_step_factor = 2.0;
  };

  explicit PollGovernor(Config config);

  // Reports the outcome of one poll; returns the interval (ticks) to the
  // next poll. `elapsed_ticks` is the time since the previous poll (used for
  // rate estimation; pass the interval actually elapsed, which may exceed
  // the requested one when the soft event fired late).
  uint64_t OnPoll(size_t packets_found, uint64_t elapsed_ticks);

  // Forgets rate history (call when polling resumes after a pause, so the
  // off-time does not read as a low arrival rate). The first OnPoll after a
  // reset clamps its elapsed time to the current interval: that elapsed span
  // covers the pause (or a trigger drought), not a real inter-poll gap, and
  // must not enter the rate estimate.
  void ResetRate();

  // ResetRate plus an interval re-clamp for resuming after a pause whose
  // traffic level is unknown (mode flip, trigger drought): the interval
  // restarts at min(current, initial), re-clamped to the Config bounds, so a
  // stale pre-pause interval cannot delay the first post-resume poll past
  // where a fresh governor would put it.
  void ReEngage();

  uint64_t current_interval_ticks() const { return interval_; }
  // Estimated packet arrival rate, packets per tick.
  double rate_estimate() const;
  double found_ewma() const { return found_ewma_.primed() ? found_ewma_.value() : 0.0; }
  uint64_t polls() const { return polls_; }
  uint64_t packets_found_total() const { return packets_total_; }

 private:
  struct PollRecord {
    uint64_t found;
    uint64_t elapsed;
  };

  Config config_;
  uint64_t interval_;
  RateEwma found_ewma_;
  // Circular buffer of the last window_polls observations. Sized once in
  // the constructor; window_count_ tracks the filled prefix so the hot
  // OnPoll path writes in place and never appends.
  std::vector<PollRecord> window_;
  size_t window_count_ = 0;
  size_t window_pos_ = 0;
  uint64_t window_found_sum_ = 0;
  uint64_t window_elapsed_sum_ = 0;
  uint64_t polls_ = 0;
  uint64_t packets_total_ = 0;
  // Set by ResetRate; the next OnPoll's elapsed time spans the pause and is
  // clamped so it cannot poison the post-resume rate estimate.
  bool resume_pending_ = false;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_POLL_GOVERNOR_H_
