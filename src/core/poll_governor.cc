#include "src/core/poll_governor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace softtimer {

PollGovernor::PollGovernor(Config config)
    : config_(config),
      interval_(config.initial_interval_ticks),
      found_ewma_(config.ewma_alpha) {
  assert(config_.aggregation_quota > 0.0);
  assert(config_.min_interval_ticks >= 1);
  assert(config_.min_interval_ticks <= config_.max_interval_ticks);
  assert(config_.max_step_factor > 1.0);
  assert(config_.window_polls >= 1);
  interval_ = std::clamp(interval_, config_.min_interval_ticks, config_.max_interval_ticks);
  // The window is sized once here and written in place from then on -
  // OnPoll carries no append path at all, so the multi-queue claim+poll
  // path it gates on is allocation-free by construction, not amortization.
  window_.resize(config_.window_polls);
}

void PollGovernor::ResetRate() {
  window_count_ = 0;
  window_pos_ = 0;
  window_found_sum_ = 0;
  window_elapsed_sum_ = 0;
  resume_pending_ = true;
}

void PollGovernor::ReEngage() {
  ResetRate();
  interval_ = std::clamp(std::min(interval_, config_.initial_interval_ticks),
                         config_.min_interval_ticks, config_.max_interval_ticks);
}

double PollGovernor::rate_estimate() const {
  if (window_elapsed_sum_ == 0) {
    return 0.0;
  }
  return static_cast<double>(window_found_sum_) / static_cast<double>(window_elapsed_sum_);
}

uint64_t PollGovernor::OnPoll(size_t packets_found, uint64_t elapsed_ticks) {
  ++polls_;
  packets_total_ += packets_found;
  if (resume_pending_) {
    // The gap since the previous poll covers the pause, not a real
    // inter-poll interval; crediting it to the window would read as a near
    // zero arrival rate and slam the interval to its maximum.
    elapsed_ticks = std::min(elapsed_ticks, interval_);
    resume_pending_ = false;
  }
  if (elapsed_ticks == 0) {
    elapsed_ticks = 1;
  }
  found_ewma_.Observe(static_cast<double>(packets_found));
  PollRecord rec{packets_found, elapsed_ticks};
  if (window_count_ < config_.window_polls) {
    window_[window_count_++] = rec;
  } else {
    window_found_sum_ -= window_[window_pos_].found;
    window_elapsed_sum_ -= window_[window_pos_].elapsed;
    window_[window_pos_] = rec;
    window_pos_ = (window_pos_ + 1) % config_.window_polls;
  }
  window_found_sum_ += rec.found;
  window_elapsed_sum_ += rec.elapsed;

  // Aim the interval so that `quota` packets arrive per poll on average, at
  // the estimated rate; step changes are bounded so one convoy cannot swing
  // the interval wildly.
  double rate = std::max(rate_estimate(), 1e-9);
  double target = config_.aggregation_quota / rate;
  double lo = static_cast<double>(interval_) / config_.max_step_factor;
  double hi = static_cast<double>(interval_) * config_.max_step_factor;
  double next = std::clamp(target, lo, hi);
  next = std::clamp(next, static_cast<double>(config_.min_interval_ticks),
                    static_cast<double>(config_.max_interval_ticks));
  interval_ = std::clamp(static_cast<uint64_t>(std::llround(next)),
                         config_.min_interval_ticks, config_.max_interval_ticks);
  return interval_;
}

}  // namespace softtimer
