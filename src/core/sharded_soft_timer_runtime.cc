#include "src/core/sharded_soft_timer_runtime.h"

#include <atomic>
#include <cassert>
#include <thread>
#include <utility>

#include "src/core/cpu_relax.h"
#include "src/timer/timer_slab.h"

namespace softtimer {

namespace {
// Remote id layout below the shard byte: bit 55 = remote, bits 54..47 =
// producer slot, bits 46..0 = per-producer sequence.
constexpr uint32_t kRemoteProducerShift = 47;
constexpr uint64_t kRemoteSeqMask = (1ull << kRemoteProducerShift) - 1;
}  // namespace

// --- RemoteIdMap -------------------------------------------------------

void RemoteIdMap::Insert(uint64_t key, uint64_t value) {
  assert(key != 0);
  if (table_.empty() || (size_ + 1) * 10 >= table_.size() * 7) {
    Grow();
  }
  InsertNoGrow(key, value);
}

void RemoteIdMap::InsertNoGrow(uint64_t key, uint64_t value) {
  size_t i = SlotFor(key);
  while (table_[i].key != 0) {
    if (table_[i].key == key) {
      table_[i].value = value;
      return;
    }
    i = (i + 1) & (table_.size() - 1);
  }
  table_[i] = Entry{key, value};
  ++size_;
}

uint64_t RemoteIdMap::Find(uint64_t key) const {
  if (table_.empty()) {
    return 0;
  }
  size_t mask = table_.size() - 1;
  size_t i = Mix(key) & mask;
  while (table_[i].key != 0) {
    if (table_[i].key == key) {
      return table_[i].value;
    }
    i = (i + 1) & mask;
  }
  return 0;
}

bool RemoteIdMap::Erase(uint64_t key) {
  if (table_.empty()) {
    return false;
  }
  size_t mask = table_.size() - 1;
  size_t i = Mix(key) & mask;
  while (table_[i].key != 0) {
    if (table_[i].key == key) {
      break;
    }
    i = (i + 1) & mask;
  }
  if (table_[i].key == 0) {
    return false;
  }
  // Backward-shift deletion: pull every displaced follower one slot back so
  // linear probing needs no tombstones.
  size_t hole = i;
  size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (table_[j].key == 0) {
      break;
    }
    size_t home = Mix(table_[j].key) & mask;
    // Move table_[j] into the hole unless its home slot lies strictly after
    // the hole on the cyclic probe path (in which case shifting it back
    // would place it before its home).
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      table_[hole] = table_[j];
      hole = j;
    }
  }
  table_[hole] = Entry{};
  --size_;
  return true;
}

// SOFTTIMER_COLD: amortized rehash - the cross-core drain runs the table at
// its doubled capacity in steady state, so growth happens only while the
// remote-id population is still climbing toward its peak.
void RemoteIdMap::Grow() {
  std::vector<Entry> old = std::move(table_);
  size_t cap = old.empty() ? 64 : old.size() * 2;
  table_.assign(cap, Entry{});
  size_ = 0;
  for (const Entry& e : old) {
    if (e.key != 0) {
      InsertNoGrow(e.key, e.value);
    }
  }
}

// --- ShardedSoftTimerRuntime -------------------------------------------

ShardedSoftTimerRuntime::ShardedSoftTimerRuntime(const ClockSource* clock,
                                                 Config config)
    : clock_(clock), config_(config) {
  assert(clock_ != nullptr);
  assert(config_.num_shards >= 1 && config_.num_shards <= kTimerIdMaxShards);
  assert(config_.max_producers >= 1 && config_.max_producers <= 256);
  // The runtime depends on the no-policy fast gate and on the payload
  // cookie field, which policy mode repurposes for deferral remaps.
  assert(!config_.facility.degradation.enabled &&
         "sharded runtime requires policy-free shards");
  config_.facility.degradation.enabled = false;
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->facility =
        std::make_unique<SoftTimerFacility>(clock_, config_.facility);
    shard->facility->set_event_retired_hook(&OnEventRetired, shard.get());
    shard->rings.reserve(config_.max_producers);
    for (size_t p = 0; p < config_.max_producers; ++p) {
      shard->rings.push_back(
          std::make_unique<SpscRing<Command>>(config_.ring_capacity));
    }
    shards_.push_back(std::move(shard));
  }
}

// Undrained commands die with their rings: handlers are destroyed, never
// fired. Producer and owner threads must be quiescent by now (the host
// joins its shard threads before destroying the runtime).
ShardedSoftTimerRuntime::~ShardedSoftTimerRuntime() = default;

ShardedSoftTimerRuntime::ProducerToken ShardedSoftTimerRuntime::RegisterProducer() {
  std::lock_guard<std::mutex> lock(producer_mutex_);
  ProducerToken token;
  if (producers_registered_ < config_.max_producers) {
    token.index_ = producers_registered_++;
  }
  return token;
}

SoftEventId ShardedSoftTimerRuntime::ScheduleOnShard(
    size_t shard, uint64_t delta_ticks, SoftTimerFacility::Handler handler,
    uint32_t handler_tag) {
  SoftEventId id = shards_[shard]->facility->ScheduleSoftEvent(
      delta_ticks, std::move(handler), handler_tag);
  return SoftEventId{WithTimerIdShard(id.value, static_cast<uint32_t>(shard))};
}

bool ShardedSoftTimerRuntime::CancelOnShard(size_t shard, SoftEventId id) {
  if (!id.valid() || TimerIdShard(id.value) != shard) {
    return false;
  }
  return ApplyCancel(*shards_[shard], id.value);
}

// SOFTTIMER_HOT
SoftEventId ShardedSoftTimerRuntime::RescheduleOnShard(size_t shard,
                                                       SoftEventId id,
                                                       uint64_t delta_ticks) {
  if (!id.valid() || TimerIdShard(id.value) != shard) {
    return SoftEventId{};
  }
  return ApplyReschedule(*shards_[shard], id.value, delta_ticks);
}

// SOFTTIMER_HOT
size_t ShardedSoftTimerRuntime::DrainRemote(size_t shard) {
  Shard& s = *shards_[shard];
  // Clear the flag, then seq_cst-fence before sweeping (the store-buffering
  // fix from the PR 3 review, paired with the producer's seq_cst publish):
  // a command published mid-sweep either gets popped below or re-raises the
  // flag for the next check, never both missed. The full scenario and the
  // orderings live in src/core/remote_pending.h; the model checker replays
  // it (shipped orderings pass, weakened ones strand a command).
  s.remote_pending.BeginDrain();
  size_t applied = 0;
  bool leftover = false;
  Command cmd;
  for (auto& ring : s.rings) {
    // Bounded sweep: at most one ring-full of commands per ring, so a
    // producer pushing at full tilt cannot pin the owner in this loop and
    // starve the shard's own dispatches. Anything beyond the budget re-raises
    // the flag and drains at the next trigger state.
    size_t budget = ring->capacity();
    while (budget-- > 0 && ring->TryPop(cmd)) {
      ApplyCommand(s, std::move(cmd));
      ++applied;
    }
    if (!ring->EmptyRelaxed()) {
      leftover = true;
    }
  }
  if (leftover) {
    s.remote_pending.Reraise();
  }
  if (applied > 0) {
    ++s.stats.drains;
  }
  return applied;
}

void ShardedSoftTimerRuntime::ApplyCommand(Shard& shard, Command&& cmd) {
  switch (cmd.op) {
    case Command::Op::kSchedule: {
      // Re-anchor the delay at the enqueue tick so time spent in the ring
      // counts against T instead of stretching it.
      uint64_t now = shard.facility->MeasureTime();
      uint64_t due = cmd.enqueue_tick + cmd.delta_ticks;
      uint64_t remaining = due > now ? due - now : 0;
      SoftEventId local = shard.facility->ScheduleSoftEventWithCookie(
          remaining, std::move(cmd.handler), cmd.tag, cmd.id);
      shard.remote_ids.Insert(cmd.id, local.value);
      ++shard.stats.remote_scheduled;
      break;
    }
    case Command::Op::kCancel:
      if (ApplyCancel(shard, cmd.id)) {
        ++shard.stats.remote_cancelled;
      } else {
        ++shard.stats.remote_cancel_misses;
      }
      break;
    case Command::Op::kUpdate: {
      // Re-anchor the delay at the enqueue tick, like a schedule command:
      // time spent in the ring counts against T instead of stretching it.
      uint64_t now = shard.facility->MeasureTime();
      uint64_t due = cmd.enqueue_tick + cmd.delta_ticks;
      uint64_t remaining = due > now ? due - now : 0;
      if (ApplyReschedule(shard, cmd.id, remaining).valid()) {
        ++shard.stats.remote_rescheduled;
      } else {
        ++shard.stats.remote_reschedule_misses;
      }
      break;
    }
    case Command::Op::kNone:
      break;
  }
}

bool ShardedSoftTimerRuntime::ApplyCancel(Shard& shard, uint64_t id_value) {
  if (IsRemoteTimerId(id_value)) {
    uint64_t local = shard.remote_ids.Find(id_value);
    if (local == 0) {
      return false;  // fired/cancelled already, or not yet drained
    }
    // The facility's retire hook erases the table entry when the cancel
    // lands, the same way a dispatch does - a live entry always maps to a
    // live event, so no explicit Erase here.
    return shard.facility->CancelSoftEvent(SoftEventId{local});
  }
  return shard.facility->CancelSoftEvent(
      SoftEventId{StripTimerIdShard(id_value)});
}

// SOFTTIMER_HOT
SoftEventId ShardedSoftTimerRuntime::ApplyReschedule(Shard& shard,
                                                     uint64_t id_value,
                                                     uint64_t delta_ticks) {
  if (IsRemoteTimerId(id_value)) {
    uint64_t local = shard.remote_ids.Find(id_value);
    if (local == 0) {
      return SoftEventId{};  // fired/cancelled already, or not yet drained
    }
    SoftEventId moved =
        shard.facility->RescheduleSoftEvent(SoftEventId{local}, delta_ticks);
    if (!moved.valid()) {
      return SoftEventId{};
    }
    // The event stayed alive (a reschedule never fires the retire hook), so
    // rebind the remote key to its possibly-renamed slab id; the caller's
    // remote handle keeps working unchanged.
    if (moved.value != local) {
      shard.remote_ids.Insert(id_value, moved.value);
    }
    return SoftEventId{id_value};
  }
  SoftEventId moved = shard.facility->RescheduleSoftEvent(
      SoftEventId{StripTimerIdShard(id_value)}, delta_ticks);
  if (!moved.valid()) {
    return SoftEventId{};
  }
  return SoftEventId{
      WithTimerIdShard(moved.value, TimerIdShard(id_value))};
}

// SOFTTIMER_HOT
SoftEventId ShardedSoftTimerRuntime::ScheduleCrossCore(
    ProducerToken& token, size_t shard, uint64_t delta_ticks,
    SoftTimerFacility::Handler handler, uint32_t handler_tag) {
  // Consuming wrapper: the rejected handler dies with `handler` here.
  return TryScheduleCrossCore(token, shard, delta_ticks, handler, handler_tag);
}

// SOFTTIMER_HOT
SoftEventId ShardedSoftTimerRuntime::TryScheduleCrossCore(
    ProducerToken& token, size_t shard, uint64_t delta_ticks,
    SoftTimerFacility::Handler& handler, uint32_t handler_tag) {
  if (!token.valid() || shard >= shards_.size()) {
    return SoftEventId{};
  }
  uint64_t seq = token.next_seq_++ & kRemoteSeqMask;
  uint64_t id = WithTimerIdShard(
      kTimerIdRemoteBit |
          (static_cast<uint64_t>(token.index_) << kRemoteProducerShift) | seq,
      static_cast<uint32_t>(shard));
  Command cmd;
  cmd.op = Command::Op::kSchedule;
  cmd.tag = handler_tag;
  cmd.id = id;
  cmd.delta_ticks = delta_ticks;
  cmd.enqueue_tick = clock_->NowTicks();
  cmd.handler = std::move(handler);
  if (!shards_[shard]->rings[token.index_]->TryPush(std::move(cmd))) {
    // TryPush leaves the rejected command intact: hand the handler back so
    // the caller can retry the same closure once the ring drains.
    handler = std::move(cmd.handler);
    ++token.ring_full_rejects_;
    return SoftEventId{};
  }
  PublishToShard(shard, token);
  return SoftEventId{id};
}

SoftEventId ShardedSoftTimerRuntime::ScheduleCrossCoreWithRetry(
    ProducerToken& token, size_t shard, uint64_t delta_ticks,
    SoftTimerFacility::Handler handler, uint32_t handler_tag,
    CrossCoreRetry retry) {
  uint32_t attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  uint32_t spin = retry.spin_base;
  for (uint32_t attempt = 0;; ++attempt) {
    SoftEventId id =
        TryScheduleCrossCore(token, shard, delta_ticks, handler, handler_tag);
    if (id.valid() || !token.valid() || shard >= shards_.size()) {
      return id;
    }
    if (attempt + 1 >= attempts) {
      ++token.retry_exhausted_;
      return SoftEventId{};
    }
    // Exponential spin backoff: the consumer drains whole rings at its next
    // trigger state, so a short producer-side spin is the cheapest way to
    // ride out a momentary burst without sleeping into added latency. Each
    // iteration issues the pause hint so the spin does not starve a sibling
    // hyperthread of the very consumer it is waiting on.
    for (uint32_t i = 0; i < spin; ++i) {
      CpuRelax();
    }
    if (spin < retry.spin_cap) {
      spin = spin * 2 < retry.spin_cap ? spin * 2 : retry.spin_cap;
    } else {
      // Spin has capped without the ring draining: the consumer is likely
      // preempted (or sharing this core), so spinning further only steals
      // its cycles. Hand the timeslice over instead.
      std::this_thread::yield();
    }
  }
}

// SOFTTIMER_HOT
bool ShardedSoftTimerRuntime::RescheduleCrossCore(ProducerToken& token,
                                                  SoftEventId id,
                                                  uint64_t delta_ticks) {
  // Remote ids only: the shard rebinds its remote-id table on apply, so the
  // caller's handle survives. A local id could be renamed by the reschedule
  // (emulated-update backends) with no way to return the new name.
  if (!token.valid() || !id.valid() || !IsRemoteTimerId(id.value)) {
    return false;
  }
  size_t shard = TimerIdShard(id.value);
  if (shard >= shards_.size()) {
    return false;
  }
  Command cmd;
  cmd.op = Command::Op::kUpdate;
  cmd.id = id.value;
  cmd.delta_ticks = delta_ticks;
  cmd.enqueue_tick = clock_->NowTicks();
  if (!shards_[shard]->rings[token.index_]->TryPush(std::move(cmd))) {
    ++token.ring_full_rejects_;
    return false;
  }
  PublishToShard(shard, token);
  return true;
}

// SOFTTIMER_HOT
bool ShardedSoftTimerRuntime::CancelCrossCore(ProducerToken& token,
                                              SoftEventId id) {
  if (!token.valid() || !id.valid()) {
    return false;
  }
  size_t shard = TimerIdShard(id.value);
  if (shard >= shards_.size()) {
    return false;
  }
  Command cmd;
  cmd.op = Command::Op::kCancel;
  cmd.id = id.value;
  if (!shards_[shard]->rings[token.index_]->TryPush(std::move(cmd))) {
    ++token.ring_full_rejects_;
    return false;
  }
  PublishToShard(shard, token);
  return true;
}

// SOFTTIMER_HOT
void ShardedSoftTimerRuntime::PublishToShard(size_t shard, ProducerToken&) {
  // Seq_cst publish, not release: pairs with the seq_cst fence in the drain
  // sweep so a publish racing a drain either has its command popped or
  // leaves the flag raised (see src/core/remote_pending.h).
  shards_[shard]->remote_pending.Publish();
  if (wake_fn_ != nullptr) {
    wake_fn_(wake_ctx_, shard);
  }
}

ShardedSoftTimerRuntime::RuntimeStats ShardedSoftTimerRuntime::AggregateStats()
    const {
  RuntimeStats out;
  for (const auto& shard : shards_) {
    const SoftTimerFacility::Stats& f = shard->facility->stats();
    out.checks += f.checks;
    out.dispatches += f.dispatches;
    out.scheduled += f.scheduled;
    out.cancelled += f.cancelled;
    out.rescheduled += f.rescheduled;
    for (size_t s = 0; s < kNumTriggerSources; ++s) {
      out.dispatches_by_source[s] += f.dispatches_by_source[s];
    }
    out.remote_scheduled += shard->stats.remote_scheduled;
    out.remote_cancelled += shard->stats.remote_cancelled;
    out.remote_rescheduled += shard->stats.remote_rescheduled;
    out.slab_capacity += f.slab_capacity;
    out.slab_live += f.slab_live;
  }
  return out;
}

}  // namespace softtimer
