// Measurement clock abstraction for the soft-timer facility.
//
// The paper's facility reads "the clock (usually a CPU register)" - a cheap
// high-resolution cycle counter - and expresses all scheduling in ticks of
// that clock (measure_resolution(), typically 1 MHz in 1999-era systems).
// ClockSource is the narrow interface the facility needs; SimClockSource maps
// simulated nanoseconds onto ticks. A production port would back this with
// rdtsc/CLOCK_MONOTONIC_RAW instead.

#ifndef SOFTTIMER_SRC_CORE_CLOCK_SOURCE_H_
#define SOFTTIMER_SRC_CORE_CLOCK_SOURCE_H_

#include <cstdint>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace softtimer {

class ClockSource {
 public:
  virtual ~ClockSource() = default;

  // Ticks elapsed since an arbitrary origin. Monotone non-decreasing.
  virtual uint64_t NowTicks() const = 0;

  // Tick rate in Hz (the paper's measure_resolution()).
  virtual uint64_t ResolutionHz() const = 0;
};

// Reads the simulator's virtual time. Tick = floor(now * hz / 1e9).
class SimClockSource : public ClockSource {
 public:
  SimClockSource(const Simulator* sim, uint64_t hz) : sim_(sim), hz_(hz) {}

  uint64_t NowTicks() const override;
  uint64_t ResolutionHz() const override { return hz_; }

  // Duration of one tick (rounded to nanoseconds).
  SimDuration TickPeriod() const;

  // Earliest simulated time at which NowTicks() reaches `tick`.
  SimTime TimeOfTick(uint64_t tick) const;

 private:
  const Simulator* sim_;
  uint64_t hz_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_CLOCK_SOURCE_H_
