#include "src/core/clock_source.h"

namespace softtimer {

uint64_t SimClockSource::NowTicks() const {
  // ticks = floor(ns * hz / 1e9), computed in 128-bit to avoid overflow for
  // multi-hour runs at GHz resolutions.
  __uint128_t ns = static_cast<__uint128_t>(sim_->now().nanos_since_origin());
  return static_cast<uint64_t>(ns * hz_ / 1'000'000'000ULL);
}

SimDuration SimClockSource::TickPeriod() const {
  return SimDuration::Nanos(static_cast<int64_t>(1'000'000'000ULL / hz_));
}

SimTime SimClockSource::TimeOfTick(uint64_t tick) const {
  // Smallest ns with floor(ns * hz / 1e9) >= tick: ceil(tick * 1e9 / hz).
  __uint128_t num = static_cast<__uint128_t>(tick) * 1'000'000'000ULL;
  uint64_t ns = static_cast<uint64_t>((num + hz_ - 1) / hz_);
  return SimTime::FromNanos(static_cast<int64_t>(ns));
}

}  // namespace softtimer
