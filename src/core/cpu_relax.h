// CpuRelax(): the spin-wait pause hint (x86 `pause`, ARM `yield`).
//
// Every busy-wait in the tree routes through this one helper: a pure
// load/compare spin saturates the core's speculation resources and starves a
// sibling hyperthread (and on x86 eats the memory-order mis-speculation
// penalty when the awaited line finally changes). The pause hint tells the
// pipeline this is a spin, releasing those resources for the duration of one
// iteration. Used by ScheduleCrossCoreWithRetry's bounded spin phase and by
// ShardedRtHost's isolated-profile trigger loop; callers keep their own
// escalation policy (yield, sleep) on top.

#ifndef SOFTTIMER_SRC_CORE_CPU_RELAX_H_
#define SOFTTIMER_SRC_CORE_CPU_RELAX_H_

#include <atomic>

namespace softtimer {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  // No architectural hint: at least force the compiler to re-load spin
  // variables each iteration instead of hoisting them out of the loop.
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_CPU_RELAX_H_
