#include "src/core/adaptive_pacer.h"

#include <algorithm>
#include <cassert>

namespace softtimer {

AdaptivePacer::AdaptivePacer(Config config) : config_(config) {
  assert(config_.target_interval_ticks > 0);
  assert(config_.min_burst_interval_ticks > 0);
  assert(config_.min_burst_interval_ticks <= config_.target_interval_ticks);
}

void AdaptivePacer::StartTrain(uint64_t now_tick) {
  train_start_tick_ = now_tick;
  packets_sent_ = 0;
}

uint64_t AdaptivePacer::OnPacketSent(uint64_t now_tick) {
  ++packets_sent_;
  // Average achieved interval since the train started. The first packet goes
  // out at the train start, so after n packets the elapsed time covers n - 1
  // ideal intervals... the paper phrases the test in terms of rates; we use
  // the equivalent "are we behind the target schedule" formulation: packet n
  // is on schedule if it left no later than train_start + (n-1) * target.
  uint64_t on_schedule_tick =
      train_start_tick_ + (packets_sent_ - 1) * config_.target_interval_ticks;
  if (now_tick > on_schedule_tick) {
    ++catchup_decisions_;
    return config_.min_burst_interval_ticks;
  }
  return config_.target_interval_ticks;
}

uint64_t AdaptivePacer::CoalescedBurstBudget(uint64_t now_tick) {
  if (config_.max_coalesced_burst_packets <= 1) {
    return 1;
  }
  // Next packet is on schedule at train_start + n * target (packet n+1 of
  // the train). Whole intervals behind that is the deficit a stale wakeup
  // may make up; the burst stays within the maximal allowable burst rate
  // because deficit <= behind / min_burst_interval.
  uint64_t on_schedule_tick =
      train_start_tick_ + packets_sent_ * config_.target_interval_ticks;
  if (now_tick <= on_schedule_tick) {
    return 1;
  }
  uint64_t deficit = (now_tick - on_schedule_tick) / config_.target_interval_ticks;
  uint64_t budget =
      1 + std::min<uint64_t>(deficit, config_.max_coalesced_burst_packets - 1);
  if (budget > 1) {
    ++coalesced_bursts_;
  }
  return budget;
}

void FixedPacer::StartTrain(uint64_t now_tick) {
  (void)now_tick;
  packets_sent_ = 0;
}

uint64_t FixedPacer::OnPacketSent(uint64_t now_tick) {
  (void)now_tick;
  ++packets_sent_;
  return target_interval_ticks_;
}

}  // namespace softtimer
