#include "src/core/adaptive_pacer.h"

#include <algorithm>
#include <cassert>

namespace softtimer {

AdaptivePacer::AdaptivePacer(Config config) : config_(config) {
  assert(config_.target_interval_ticks > 0);
  assert(config_.min_burst_interval_ticks > 0);
  assert(config_.min_burst_interval_ticks <= config_.target_interval_ticks);
}

void AdaptivePacer::StartTrain(uint64_t now_tick) {
  train_.Start(now_tick);
}

uint64_t AdaptivePacer::OnPacketSent(uint64_t now_tick) {
  // Average achieved interval since the train started. The first packet goes
  // out at the train start, so after n packets the elapsed time covers n - 1
  // ideal intervals... the paper phrases the test in terms of rates; we use
  // the equivalent "are we behind the target schedule" formulation: packet n
  // is on schedule if it left no later than train_start + (n-1) * target.
  // The arithmetic lives in PacedTrain so the pacing wheel's batched drains
  // make the identical decisions per flow.
  PacedTrain::SendDecision d = train_.OnBurstSent(
      now_tick, 1, config_.target_interval_ticks, config_.min_burst_interval_ticks);
  if (d.catch_up) {
    ++catchup_decisions_;
  }
  return d.next_delay_ticks;
}

uint64_t AdaptivePacer::CoalescedBurstBudget(uint64_t now_tick) {
  // Whole intervals behind the next packet's on-schedule time is the deficit
  // a stale wakeup may make up; the burst stays within the maximal allowable
  // burst rate because deficit <= behind / min_burst_interval.
  uint64_t budget = train_.BurstBudget(now_tick, config_.target_interval_ticks,
                                       config_.max_coalesced_burst_packets);
  if (budget > 1) {
    ++coalesced_bursts_;
  }
  return budget;
}

void FixedPacer::StartTrain(uint64_t now_tick) {
  (void)now_tick;
  packets_sent_ = 0;
}

uint64_t FixedPacer::OnPacketSent(uint64_t now_tick) {
  (void)now_tick;
  ++packets_sent_;
  return target_interval_ticks_;
}

}  // namespace softtimer
