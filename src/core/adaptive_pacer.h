// AdaptivePacer - the rate-based clocking scheduler of Section 4.1.
//
// The paper schedules only one transmission event at a time and adapts the
// next interval to smooth out soft-timer delay jitter:
//
//   "The algorithm uses two parameters, the target transmission rate and the
//    maximal allowable burst transmission rate. The algorithm keeps track of
//    the average transmission rate since the beginning of the current train
//    of transmitted packets. Normally, the next transmission event is
//    scheduled at an interval appropriate for achieving the target
//    transmission rate. However, when the actual transmission rate falls
//    behind the target transmission rate due to soft timer delays, then the
//    next transmission is scheduled at an interval corresponding to the
//    maximal allowable burst transmission rate."
//
// Intervals are expressed in measurement-clock ticks. The class is pure
// arithmetic: the caller transmits a packet, reports the send with
// OnPacketSent(now), and schedules the next soft event with the returned
// delay. A FixedPacer with the same interface is provided for the ablation
// bench (fixed-interval scheduling, which the paper argues causes bursts).

#ifndef SOFTTIMER_SRC_CORE_ADAPTIVE_PACER_H_
#define SOFTTIMER_SRC_CORE_ADAPTIVE_PACER_H_

#include <cstdint>

namespace softtimer {

class AdaptivePacer {
 public:
  struct Config {
    // Desired average inter-packet interval (ticks). E.g. 40 us.
    uint64_t target_interval_ticks = 0;
    // Smallest interval the pacer may schedule when catching up; corresponds
    // to the maximal allowable burst rate (e.g. 12 us = 1500 B at 1 Gbps).
    uint64_t min_burst_interval_ticks = 0;
    // Degradation recovery: when a pace event arrives several target
    // intervals late (a trigger drought or quarantined host stalled the
    // soft-timer stream), the caller may coalesce the missed schedule into
    // one bounded burst at this wakeup instead of firing a convoy of
    // catch-up events. Caps the packets per wakeup; 0 disables coalescing
    // (every wakeup sends exactly one packet, the seed behaviour).
    uint32_t max_coalesced_burst_packets = 0;
  };

  explicit AdaptivePacer(Config config);

  // Marks the start of a packet train. The caller typically transmits the
  // first packet immediately afterwards.
  void StartTrain(uint64_t now_tick);

  // Records a packet transmission at `now_tick` and returns the delay (in
  // ticks) at which the next transmission event should be scheduled.
  uint64_t OnPacketSent(uint64_t now_tick);

  // Packets the caller may transmit back-to-back at a (possibly stale)
  // wakeup: 1 plus the whole target intervals the train is behind schedule,
  // capped at max_coalesced_burst_packets. The burst replaces the deficit's
  // worth of catch-up events, and its size is what the maximal allowable
  // burst rate permits over the missed span, so one stale event cannot turn
  // into an unbounded convoy. Always 1 when coalescing is disabled.
  uint64_t CoalescedBurstBudget(uint64_t now_tick);

  uint64_t packets_sent() const { return packets_sent_; }
  // How often the catch-up (burst) branch was taken.
  uint64_t catchup_decisions() const { return catchup_decisions_; }
  // Wakeups where CoalescedBurstBudget granted more than one packet.
  uint64_t coalesced_bursts() const { return coalesced_bursts_; }

 private:
  Config config_;
  uint64_t train_start_tick_ = 0;
  uint64_t packets_sent_ = 0;
  uint64_t catchup_decisions_ = 0;
  uint64_t coalesced_bursts_ = 0;
};

// Schedules every transmission at the fixed target interval regardless of
// achieved rate: the strawman of Section 4.1 ("scheduling a series of
// transmission events at fixed intervals ... can lead to occasional bursty
// transmissions"). Used by the ablation bench.
class FixedPacer {
 public:
  explicit FixedPacer(uint64_t target_interval_ticks)
      : target_interval_ticks_(target_interval_ticks) {}

  void StartTrain(uint64_t now_tick);
  uint64_t OnPacketSent(uint64_t now_tick);

  uint64_t packets_sent() const { return packets_sent_; }

 private:
  uint64_t target_interval_ticks_;
  uint64_t packets_sent_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_ADAPTIVE_PACER_H_
