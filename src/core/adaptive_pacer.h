// AdaptivePacer - the rate-based clocking scheduler of Section 4.1.
//
// The paper schedules only one transmission event at a time and adapts the
// next interval to smooth out soft-timer delay jitter:
//
//   "The algorithm uses two parameters, the target transmission rate and the
//    maximal allowable burst transmission rate. The algorithm keeps track of
//    the average transmission rate since the beginning of the current train
//    of transmitted packets. Normally, the next transmission event is
//    scheduled at an interval appropriate for achieving the target
//    transmission rate. However, when the actual transmission rate falls
//    behind the target transmission rate due to soft timer delays, then the
//    next transmission is scheduled at an interval corresponding to the
//    maximal allowable burst transmission rate."
//
// Intervals are expressed in measurement-clock ticks. The class is pure
// arithmetic: the caller transmits a packet, reports the send with
// OnPacketSent(now), and schedules the next soft event with the returned
// delay. A FixedPacer with the same interface is provided for the ablation
// bench (fixed-interval scheduling, which the paper argues causes bursts).

#ifndef SOFTTIMER_SRC_CORE_ADAPTIVE_PACER_H_
#define SOFTTIMER_SRC_CORE_ADAPTIVE_PACER_H_

#include <algorithm>
#include <cstdint>

namespace softtimer {

// The per-train pacing arithmetic shared by AdaptivePacer (one flow, one
// soft event per packet) and PacingWheel (many flows, batched wheel drains;
// src/pacing). 16 bytes of POD so a million-flow wheel can embed one per
// flow node.
//
// A "train" starts at start_tick with its first packet leaving immediately;
// packet n of the train is on schedule if it left no later than
// start_tick + (n - 1) * target. Falling behind that line takes the paper's
// catch-up branch: the next event is scheduled at the maximal allowable
// burst rate, i.e. the returned delay is *clamped at* min_burst — never
// below it.
//
// First-packet clamp: immediately after Start(), the achieved rate the
// paper's algorithm tracks has no samples yet (reads as zero), and packet
// 1's on-schedule time is the train start itself — so *any* dispatch
// lateness at all (and soft-timer lateness is always >= 1 tick) takes the
// catch-up branch on the very first send. The min_burst clamp is what keeps
// that first-packet burst at the maximal allowable burst rate instead of
// collapsing to back-to-back sends; tests/adaptive_pacer_test.cc pins this.
struct PacedTrain {
  uint64_t start_tick = 0;
  uint64_t packets = 0;

  void Start(uint64_t now_tick) {
    start_tick = now_tick;
    packets = 0;
  }

  struct SendDecision {
    uint64_t next_delay_ticks;  // delay until the next transmission event
    bool catch_up;              // the burst-rate branch was taken
  };

  // Accounts `count` packets transmitted back-to-back at now_tick and
  // decides the delay to the next transmission event. With count == 1 this
  // is exactly the paper's per-packet decision; a wheel drain emitting a
  // coalesced burst of k packets lands in the same state as k consecutive
  // per-packet calls at the same now (the schedule test only depends on the
  // running packet count and the train start).
  SendDecision OnBurstSent(uint64_t now_tick, uint64_t count,
                           uint64_t target_interval_ticks,
                           uint64_t min_burst_interval_ticks) {
    packets += count;
    uint64_t on_schedule_tick = start_tick + (packets - 1) * target_interval_ticks;
    if (now_tick > on_schedule_tick) {
      return {min_burst_interval_ticks, true};
    }
    return {target_interval_ticks, false};
  }

  // Packets a (possibly stale) wakeup may transmit back-to-back: 1 plus the
  // whole target intervals the train is behind schedule, capped at
  // max_coalesced. Pure; does not account the send. max_coalesced <= 1
  // disables coalescing (always 1).
  uint64_t BurstBudget(uint64_t now_tick, uint64_t target_interval_ticks,
                       uint32_t max_coalesced) const {
    if (max_coalesced <= 1) {
      return 1;
    }
    uint64_t on_schedule_tick = start_tick + packets * target_interval_ticks;
    if (now_tick <= on_schedule_tick) {
      return 1;
    }
    uint64_t deficit = (now_tick - on_schedule_tick) / target_interval_ticks;
    return 1 + std::min<uint64_t>(deficit, max_coalesced - 1);
  }
};

class AdaptivePacer {
 public:
  struct Config {
    // Desired average inter-packet interval (ticks). E.g. 40 us.
    uint64_t target_interval_ticks = 0;
    // Smallest interval the pacer may schedule when catching up; corresponds
    // to the maximal allowable burst rate (e.g. 12 us = 1500 B at 1 Gbps).
    uint64_t min_burst_interval_ticks = 0;
    // Degradation recovery: when a pace event arrives several target
    // intervals late (a trigger drought or quarantined host stalled the
    // soft-timer stream), the caller may coalesce the missed schedule into
    // one bounded burst at this wakeup instead of firing a convoy of
    // catch-up events. Caps the packets per wakeup; 0 disables coalescing
    // (every wakeup sends exactly one packet, the seed behaviour).
    uint32_t max_coalesced_burst_packets = 0;
  };

  explicit AdaptivePacer(Config config);

  // Marks the start of a packet train. The caller typically transmits the
  // first packet immediately afterwards.
  void StartTrain(uint64_t now_tick);

  // Records a packet transmission at `now_tick` and returns the delay (in
  // ticks) at which the next transmission event should be scheduled. When
  // the train has fallen behind the target schedule the returned delay is
  // the catch-up interval, clamped at min_burst_interval_ticks — including
  // on the first packet of a train, where the achieved rate is still
  // zero-sampled and any lateness at all trips the catch-up branch (see
  // PacedTrain's first-packet clamp note above).
  uint64_t OnPacketSent(uint64_t now_tick);

  // Packets the caller may transmit back-to-back at a (possibly stale)
  // wakeup: 1 plus the whole target intervals the train is behind schedule,
  // capped at max_coalesced_burst_packets. The burst replaces the deficit's
  // worth of catch-up events, and its size is what the maximal allowable
  // burst rate permits over the missed span, so one stale event cannot turn
  // into an unbounded convoy. Always 1 when coalescing is disabled.
  uint64_t CoalescedBurstBudget(uint64_t now_tick);

  uint64_t packets_sent() const { return train_.packets; }
  // How often the catch-up (burst) branch was taken.
  uint64_t catchup_decisions() const { return catchup_decisions_; }
  // Wakeups where CoalescedBurstBudget granted more than one packet.
  uint64_t coalesced_bursts() const { return coalesced_bursts_; }

 private:
  Config config_;
  PacedTrain train_;
  uint64_t catchup_decisions_ = 0;
  uint64_t coalesced_bursts_ = 0;
};

// Schedules every transmission at the fixed target interval regardless of
// achieved rate: the strawman of Section 4.1 ("scheduling a series of
// transmission events at fixed intervals ... can lead to occasional bursty
// transmissions"). Used by the ablation bench.
class FixedPacer {
 public:
  explicit FixedPacer(uint64_t target_interval_ticks)
      : target_interval_ticks_(target_interval_ticks) {}

  void StartTrain(uint64_t now_tick);
  uint64_t OnPacketSent(uint64_t now_tick);

  uint64_t packets_sent() const { return packets_sent_; }

 private:
  uint64_t target_interval_ticks_;
  uint64_t packets_sent_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_ADAPTIVE_PACER_H_
