// Bounded lock-free single-producer / single-consumer ring.
//
// The cross-core command channel of ShardedSoftTimerRuntime: each
// (producer thread, target shard) pair owns exactly one ring, so every ring
// has one writer and one reader and needs no CAS loops - a push is a slot
// move plus one release store, a pop is a slot move plus one release store,
// and the consumer's emptiness probe is a single relaxed load (the cost the
// sharded runtime adds to a shard's nothing-due trigger check).
//
// Slots hold T by value and are recycled in place; pushing move-assigns into
// the slot and popping move-assigns out, so a T whose move is allocation-free
// (e.g. a command carrying a std::function handler) keeps the channel
// allocation-free in steady state. Capacity is rounded up to a power of two;
// head/tail are monotonically increasing uint64 counters (no wrap handling
// needed within any realistic lifetime), kept on separate cache lines along
// with each side's cached view of the other's counter.
//
// Concurrency-model parameters (see src/core/atomics_traits.h): the ring is
// templated on an atomics-traits type so the identical protocol code runs
// against std::atomic in production and against the model checker's
// simulated memory in tests/model_check_test.cc, and on an ordering-policy
// type whose shipped defaults (SpscRingOrdering) are what production uses.
// The policy exists so the model-check suite can *weaken* one ordering at a
// time and prove the checker catches the resulting race - never override it
// in production code.

#ifndef SOFTTIMER_SRC_CORE_SPSC_RING_H_
#define SOFTTIMER_SRC_CORE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "src/core/atomics_traits.h"

namespace softtimer {

// Fixed rather than std::hardware_destructive_interference_size: that value
// shifts with compiler version/-mtune (gcc warns it may break ABI), and 64
// is right for every target this repo builds on.
inline constexpr size_t kCacheLineBytes = 64;

// The shipped memory orderings of the ring protocol. Each publishing store
// is release and each cross-side load is acquire: the pair makes the slot
// bytes written before a counter bump visible to the side that observes the
// bump. Same-side loads are relaxed (a thread always sees its own stores).
struct SpscRingOrdering {
  // ordering: producer reading its own tail; no synchronization needed.
  static constexpr std::memory_order kOwnTailLoad = std::memory_order_relaxed;
  // ordering: consumer reading its own head; no synchronization needed.
  static constexpr std::memory_order kOwnHeadLoad = std::memory_order_relaxed;
  // ordering: producer's view of head must also acquire the consumer's slot
  // reads, so reusing the slot cannot race the pop that freed it.
  static constexpr std::memory_order kHeadLoad = std::memory_order_acquire;
  // ordering: consumer's view of tail must acquire the producer's slot
  // write, so popping reads fully-constructed contents.
  static constexpr std::memory_order kTailLoad = std::memory_order_acquire;
  // ordering: publishes the slot write to the consumer (pairs w/ kTailLoad).
  static constexpr std::memory_order kTailStore = std::memory_order_release;
  // ordering: publishes the slot recycle to the producer (pairs w/ kHeadLoad).
  static constexpr std::memory_order kHeadStore = std::memory_order_release;
};

template <typename T, typename Traits = StdAtomicsTraits,
          typename Ordering = SpscRingOrdering>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  size_t capacity() const { return mask_ + 1; }

  // Producer side. Returns false (and leaves `v` intact) when full.
  bool TryPush(T&& v) {
    uint64_t tail = tail_.pos.load(Ordering::kOwnTailLoad);
    if (tail - tail_.cached_other >= capacity()) {
      tail_.cached_other = head_.pos.load(Ordering::kHeadLoad);
      if (tail - tail_.cached_other >= capacity()) {
        return false;
      }
    }
    Traits::OnNonAtomicWrite(&slots_[tail & mask_]);
    slots_[tail & mask_] = std::move(v);
    tail_.pos.store(tail + 1, Ordering::kTailStore);
    return true;
  }

  // Consumer side. Returns false when empty.
  bool TryPop(T& out) {
    uint64_t head = head_.pos.load(Ordering::kOwnHeadLoad);
    if (head == head_.cached_other) {
      head_.cached_other = tail_.pos.load(Ordering::kTailLoad);
      if (head == head_.cached_other) {
        return false;
      }
    }
    Traits::OnNonAtomicRead(&slots_[head & mask_]);
    out = std::move(slots_[head & mask_]);
    Traits::OnNonAtomicWrite(&slots_[head & mask_]);
    slots_[head & mask_] = T{};  // drop resources the moved-from slot retains
    head_.pos.store(head + 1, Ordering::kHeadStore);
    return true;
  }

  // Consumer-side cheap probe; may transiently say "empty" for an element
  // published concurrently (the pending-flag protocol above this ring - a
  // seq_cst flag store on the producer side paired with a seq_cst fence
  // after the consumer's flag clear - closes that window).
  bool EmptyRelaxed() const {
    // ordering: intentionally relaxed on both counters - staleness here only
    // delays a drain until the pending-flag protocol re-raises it.
    return head_.pos.load(std::memory_order_relaxed) ==
           tail_.pos.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineBytes) Side {
    typename Traits::template Atomic<uint64_t> pos{0};
    // This side's cached copy of the opposite counter (avoids an acquire
    // load per operation in the common non-full/non-empty case).
    uint64_t cached_other = 0;
  };

  std::vector<T> slots_;
  size_t mask_ = 0;
  Side head_;  // consumer cursor
  Side tail_;  // producer cursor
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_SPSC_RING_H_
