// Bounded lock-free single-producer / single-consumer ring.
//
// The cross-core command channel of ShardedSoftTimerRuntime: each
// (producer thread, target shard) pair owns exactly one ring, so every ring
// has one writer and one reader and needs no CAS loops - a push is a slot
// move plus one release store, a pop is a slot move plus one release store,
// and the consumer's emptiness probe is a single relaxed load (the cost the
// sharded runtime adds to a shard's nothing-due trigger check).
//
// Slots hold T by value and are recycled in place; pushing move-assigns into
// the slot and popping move-assigns out, so a T whose move is allocation-free
// (e.g. a command carrying a std::function handler) keeps the channel
// allocation-free in steady state. Capacity is rounded up to a power of two;
// head/tail are monotonically increasing uint64 counters (no wrap handling
// needed within any realistic lifetime), kept on separate cache lines along
// with each side's cached view of the other's counter.

#ifndef SOFTTIMER_SRC_CORE_SPSC_RING_H_
#define SOFTTIMER_SRC_CORE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace softtimer {

// Fixed rather than std::hardware_destructive_interference_size: that value
// shifts with compiler version/-mtune (gcc warns it may break ABI), and 64
// is right for every target this repo builds on.
inline constexpr size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  size_t capacity() const { return mask_ + 1; }

  // Producer side. Returns false (and leaves `v` intact) when full.
  bool TryPush(T&& v) {
    uint64_t tail = tail_.pos.load(std::memory_order_relaxed);
    if (tail - tail_.cached_other >= capacity()) {
      tail_.cached_other = head_.pos.load(std::memory_order_acquire);
      if (tail - tail_.cached_other >= capacity()) {
        return false;
      }
    }
    slots_[tail & mask_] = std::move(v);
    tail_.pos.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when empty.
  bool TryPop(T& out) {
    uint64_t head = head_.pos.load(std::memory_order_relaxed);
    if (head == head_.cached_other) {
      head_.cached_other = tail_.pos.load(std::memory_order_acquire);
      if (head == head_.cached_other) {
        return false;
      }
    }
    out = std::move(slots_[head & mask_]);
    slots_[head & mask_] = T{};  // drop resources the moved-from slot retains
    head_.pos.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer-side cheap probe; may transiently say "empty" for an element
  // published concurrently (the pending-flag protocol above this ring - a
  // seq_cst flag store on the producer side paired with a seq_cst fence
  // after the consumer's flag clear - closes that window).
  bool EmptyRelaxed() const {
    return head_.pos.load(std::memory_order_relaxed) ==
           tail_.pos.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineBytes) Side {
    std::atomic<uint64_t> pos{0};
    // This side's cached copy of the opposite counter (avoids an acquire
    // load per operation in the common non-full/non-empty case).
    uint64_t cached_other = 0;
  };

  std::vector<T> slots_;
  size_t mask_ = 0;
  Side head_;  // consumer cursor
  Side tail_;  // producer cursor
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_SPSC_RING_H_
