// SoftTimerFacility - the paper's contribution (Section 3).
//
// Provides the paper's four operations:
//
//   measure_resolution()         -> MeasureResolution()
//   measure_time()               -> MeasureTime()
//   interrupt_clock_resolution() -> InterruptClockResolution()
//   schedule_soft_event(T, h)    -> ScheduleSoftEvent(T, h)
//
// An event scheduled with delay T at tick S fires at the first *trigger
// state* (or backup interrupt) whose tick is >= S + T + 1; the "+1" accounts
// for S not being tick-aligned, giving the paper's bound
//
//      T  <  ActualEventTime  <  T + X + 1,     X = measure/interrupt ratio,
//
// which the backup interrupt enforces on the high side (it calls
// OnBackupInterrupt() every X ticks and dispatches anything overdue).
//
// The facility is pure scheduling logic over a ClockSource and a TimerQueue:
// it consumes no CPU-time model of its own. The host environment (in this
// repository, machine::Kernel) is responsible for (a) calling
// OnTriggerState() at every trigger state, (b) calling OnBackupInterrupt()
// from the periodic timer interrupt, and (c) charging whatever per-check and
// per-dispatch costs apply via the observer hooks.
//
// Hot-path anatomy (see DESIGN.md): trigger-state checks are the operation
// the paper requires to cost "roughly that of a function call", so the
// facility keeps a cached next-deadline tick. A check when nothing is due is
// one clock read plus one compare - no virtual call into the queue, no
// allocation. Scheduling moves the handler into the timer queue's typed slab
// node (TimerPayload, src/timer/timer_queue.h), so steady-state scheduling
// performs zero heap allocations as well.

#ifndef SOFTTIMER_SRC_CORE_SOFT_TIMER_FACILITY_H_
#define SOFTTIMER_SRC_CORE_SOFT_TIMER_FACILITY_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "src/core/clock_source.h"
#include "src/core/degradation_policy.h"
#include "src/core/trigger.h"
#include "src/stats/summary_stats.h"
#include "src/timer/timer_queue.h"

namespace softtimer {

// Identifies one scheduled soft event; default-constructed ids are invalid.
struct SoftEventId {
  uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class SoftTimerFacility {
 public:
  struct Config {
    // Backup periodic interrupt rate (the paper's interrupt_clock_resolution,
    // typically 1 kHz). The host must actually call OnBackupInterrupt() at
    // this rate; the facility only uses the value for bookkeeping/X.
    uint64_t interrupt_clock_hz = 1'000;
    // Timer data structure holding pending events (the paper uses a modified
    // timing wheel).
    TimerQueueKind queue_kind = TimerQueueKind::kHashedWheel;
    // Graceful-degradation policy (drought escalation, handler quarantine,
    // batch caps). Disabled by default: the facility then runs the
    // zero-overhead fast-gate dispatch path.
    DegradationPolicy::Config degradation;
    // A drain (one OnTriggerState that found work) reads the clock once up
    // front and stamps every dispatched event's fired_tick from that cached
    // read, re-reading only after this many dispatches. This amortizes the
    // clock access that used to be paid per event while keeping fired_tick
    // staleness bounded (at most this many handler executions behind the
    // real clock), so the paper's T < actual < T + X + 1 dispatch bound is
    // preserved: the cached read never affects *when* events run, only the
    // timestamp handed to them. Minimum 1 (= the old read-per-event
    // behaviour).
    uint32_t max_dispatches_per_clock_read = 64;
  };

  // Context passed to a firing handler.
  struct FireInfo {
    uint64_t scheduled_tick;  // MeasureTime() when the event was scheduled
    uint64_t delta_ticks;     // the T passed to ScheduleSoftEvent
    uint64_t fired_tick;      // MeasureTime() at dispatch
    TriggerSource source;     // which trigger state (or backup) fired it
    uint32_t handler_tag = 0; // caller-chosen handler class (0 = anonymous)
    // Lateness beyond the scheduled delay: fired - scheduled - T. Always
    // >= 1 on a healthy clock because of the +1 rounding tick (the paper's
    // d = lateness - 1); clamped to 0 when a clock anomaly (stall/backward
    // step) makes the dispatch tick precede the nominal due time, so the
    // anomaly cannot wrap to a huge uint64 and poison Stats::lateness_ticks.
    uint64_t lateness_ticks() const {
      uint64_t due = scheduled_tick + delta_ticks;
      return fired_tick < due ? 0 : fired_tick - due;
    }
  };
  using Handler = std::function<void(const FireInfo&)>;

  SoftTimerFacility(const ClockSource* clock, Config config);

  // --- The paper's API -------------------------------------------------
  uint64_t MeasureResolution() const { return clock_->ResolutionHz(); }
  uint64_t MeasureTime() const { return clock_->NowTicks(); }
  uint64_t InterruptClockResolution() const { return config_.interrupt_clock_hz; }

  // Schedules `handler` to be called at least `delta_ticks` ticks in the
  // future (at the first trigger state or backup interrupt past the bound).
  // `handler_tag` names the handler class for budget/quarantine accounting
  // under the degradation policy; tag 0 is anonymous and exempt.
  SoftEventId ScheduleSoftEvent(uint64_t delta_ticks, Handler handler,
                                uint32_t handler_tag = 0) {
    return ScheduleSoftEventWithCookie(delta_ticks, std::move(handler),
                                       handler_tag, 0);
  }

  // ScheduleSoftEvent with an opaque non-zero cookie attached to the event.
  // When the event is dispatched or cancelled, the retire hook (below) is
  // invoked with the cookie. Used by ShardedSoftTimerRuntime to tie a
  // cross-core event back to its remote-id table entry without wrapping the
  // handler in an extra (allocating) closure. Only valid without a
  // degradation policy (policy mode reuses the payload cookie field for
  // deferral remaps).
  SoftEventId ScheduleSoftEventWithCookie(uint64_t delta_ticks, Handler handler,
                                          uint32_t handler_tag, uint64_t cookie);

  // Cancels a pending event; false if it fired or was already cancelled.
  bool CancelSoftEvent(SoftEventId id);

  // Re-arms a pending event to fire `delta_ticks` from now, preserving its
  // handler, tag, and cookie (no retire: the event stays alive). Returns the
  // id naming the event afterwards - the input id itself when the backend
  // updates natively (grouped sorting queue), a fresh id under the emulated
  // cancel+reschedule - or an invalid id if the event already fired or was
  // cancelled. Treat the input id as consumed either way. The paper's
  // deadline rule applies as if freshly scheduled: the event fires at the
  // first trigger state past MeasureTime() + delta + 1. Zero-alloc; only
  // valid without a degradation policy (like cookies, the policy reuses the
  // payload metadata this path rewrites in place).
  SoftEventId RescheduleSoftEvent(SoftEventId id, uint64_t delta_ticks);

  // Raw-function-pointer hook invoked when an event carrying a non-zero
  // cookie is retired: pre-handler at dispatch, or on a successful
  // CancelSoftEvent; no-policy mode only. Kept as a plain pointer + context
  // so installing and firing it never allocates.
  using EventRetiredFn = void (*)(void* ctx, uint64_t cookie);
  void set_event_retired_hook(EventRetiredFn fn, void* ctx) {
    event_retired_fn_ = fn;
    event_retired_ctx_ = ctx;
  }

  // --- Host integration points ----------------------------------------
  // The "check for pending soft timer events" performed in a trigger state:
  // reads the clock, compares against the cached next deadline, and
  // dispatches anything due. Returns the number of handlers invoked. When
  // nothing is due (the overwhelmingly common case) this is one clock read
  // and one compare.
  // SOFTTIMER_HOT
  size_t OnTriggerState(TriggerSource source) {
    ++stats_.checks;
    if (policy_ == nullptr) {
      // Fast gate: next_deadline_ is a conservative lower bound on the
      // earliest pending deadline (UINT64_MAX when the queue is empty).
      if (MeasureTime() < next_deadline_) {
        return 0;
      }
      return ExpireDue(source);
    }
    return PolicyCheck(source);
  }

  // Called from the periodic backup timer interrupt; dispatches overdue
  // events that no trigger state picked up.
  size_t OnBackupInterrupt() { return OnTriggerState(TriggerSource::kBackupIntr); }

  // Observer invoked once per dispatched handler (before the handler), so a
  // host can charge per-dispatch CPU cost. May be empty.
  void set_dispatch_observer(std::function<void(const FireInfo&)> obs) {
    dispatch_observer_ = std::move(obs);
  }

  // Raw-function-pointer probe invoked once per dispatched handler (before
  // the handler and before the dispatch observer) with the event's FireInfo.
  // Kept as a plain pointer + context so installing and firing it never
  // allocates and costs one predictable indirect call on the hot path - this
  // is how ShardedRtHost feeds its per-shard dispatch-lateness histograms
  // (FireInfo::lateness_ticks per dispatch) without a std::function in the
  // loop. Independent of the dispatch observer; both may be installed.
  using LatenessProbeFn = void (*)(void* ctx, const FireInfo& info);
  void set_lateness_probe(LatenessProbeFn fn, void* ctx) {
    lateness_probe_fn_ = fn;
    lateness_probe_ctx_ = ctx;
  }

  // Observer invoked after each ScheduleSoftEvent. The host's idle loop uses
  // this to resume polling when a new event lands while the CPU is idle
  // (Section 5.2's halt condition (a) can newly fail).
  void set_schedule_observer(std::function<void()> obs) {
    schedule_observer_ = std::move(obs);
  }

  // Probe invoked after each handler returns (only when the degradation
  // policy is enabled), returning the dispatch's cost in measurement ticks
  // so the policy can enforce the per-dispatch handler budget. The host is
  // the only party that knows the charged CPU cost; without a probe, costs
  // read as 0 and no handler is ever quarantined.
  void set_dispatch_cost_probe(std::function<uint64_t(const FireInfo&)> probe) {
    dispatch_cost_probe_ = std::move(probe);
  }

  // --- Degradation ------------------------------------------------------
  // Non-null when Config::degradation.enabled.
  DegradationPolicy* degradation() { return policy_.get(); }
  const DegradationPolicy* degradation() const { return policy_.get(); }

  // Backup-rate multiplier the host should run its periodic interrupt at
  // (1 = nominal; the policy escalates it during droughts).
  uint32_t backup_rate_multiplier() const {
    return policy_ ? policy_->backup_rate_multiplier() : 1;
  }

  // Registers a drought-transition listener (no-op without a policy).
  void AddDroughtListener(std::function<void(bool entering)> fn) {
    if (policy_) {
      policy_->AddDroughtListener(std::move(fn));
    }
  }

  // --- Introspection ----------------------------------------------------
  // Earliest pending deadline (absolute tick), if any. The idle loop uses
  // this to decide whether to halt (Section 5.2: halt when nothing is due
  // before the next backup interrupt). Exact (reads the queue, not the
  // fast-gate cache).
  std::optional<uint64_t> NextDeadlineTick() const { return queue_->EarliestDeadline(); }

  size_t pending_count() const { return queue_->size(); }

  // Releases fully-free timer-node slab chunks (see TimerQueue::TrimSlab);
  // returns chunks released. A maintenance call, not a hot-path one.
  size_t TrimSlabStorage() { return queue_->TrimSlab(); }

  // X = measurement ticks per backup-interrupt period.
  uint64_t ticks_per_backup_interval() const;

  struct Stats {
    uint64_t checks = 0;            // OnTriggerState calls
    uint64_t dispatches = 0;        // handlers invoked
    uint64_t scheduled = 0;
    uint64_t cancelled = 0;
    uint64_t rescheduled = 0;       // RescheduleSoftEvent re-arms
    // Dispatches broken down by the trigger source that performed them.
    std::array<uint64_t, kNumTriggerSources> dispatches_by_source{};
    // Distribution of handler lateness (FireInfo::lateness_ticks), in ticks.
    SummaryStats lateness_ticks;
    // Timer-node slab occupancy (refreshed from the queue on stats() reads):
    // slots currently backed by storage, and allocated nodes among them.
    uint32_t slab_capacity = 0;
    uint32_t slab_live = 0;
  };
  const Stats& stats() const {
    TimerSlabStats slab = queue_->slab_stats();
    stats_.slab_capacity = slab.capacity;
    stats_.slab_live = slab.live;
    return stats_;
  }
  void ResetStats() { stats_ = Stats{}; }

 private:
  // The queue-node handler installed by ScheduleSoftEvent when no policy is
  // configured: forwards to the facility's single dispatch entry point. The
  // event's scheduling metadata lives in the node's TimerPayload, not in a
  // closure capture, so the whole thunk is {facility, handler} and fits the
  // handler slot's inline buffer.
  struct DispatchThunk {
    SoftTimerFacility* facility;
    Handler handler;
    void operator()(const TimerFired& fired) {
      facility->DispatchFired(fired, handler);
    }
  };

  // Policy-mode variant: consults quarantine/batch-cap state and either
  // dispatches or defers (relinks the node's payload under a new TimerId).
  struct PolicyThunk {
    SoftTimerFacility* facility;
    Handler handler;
    void operator()(const TimerFired& fired) {
      facility->RunOrDeferFired(fired, handler);
    }
  };

  // Single dispatch entry point: builds FireInfo from the fired payload,
  // updates stats, runs observers and the handler.
  void DispatchFired(const TimerFired& fired, const Handler& handler);

  // Policy-mode dispatch: runs the handler, or defers it (quarantined tag at
  // a non-backup check, or batch cap reached) by rescheduling the payload.
  // May move `handler` out (into the deferred node).
  void RunOrDeferFired(const TimerFired& fired, Handler& handler);

  // Policy-mode cancel fallback: a deferral may have relinked the event
  // under a new TimerId; probes the remap table and cancels through it.
  // Never reached on the no-policy fast path (see the definition's
  // SOFTTIMER_COLD rationale).
  bool CancelViaDeferredRemap(uint64_t id_value);

  // Slow path of the no-policy check: expires due timers and refreshes the
  // next-deadline gate from the queue.
  size_t ExpireDue(TriggerSource source);

  // Policy-mode check: feeds the density tracker and expires due timers.
  size_t PolicyCheck(TriggerSource source);

  const ClockSource* clock_;
  Config config_;
  std::unique_ptr<TimerQueue> queue_;
  std::unique_ptr<DegradationPolicy> policy_;
  std::function<void(const FireInfo&)> dispatch_observer_;
  std::function<void()> schedule_observer_;
  std::function<uint64_t(const FireInfo&)> dispatch_cost_probe_;
  EventRetiredFn event_retired_fn_ = nullptr;
  void* event_retired_ctx_ = nullptr;
  LatenessProbeFn lateness_probe_fn_ = nullptr;
  void* lateness_probe_ctx_ = nullptr;
  // Conservative cached copy of the earliest pending deadline, maintained
  // only when no policy is configured (the policy needs every check to reach
  // its density tracker anyway). Invariant: next_deadline_ <= the queue's
  // true earliest deadline; UINT64_MAX when (believed) empty. May lag low
  // after a cancel - that costs one slow-path check, never a missed event.
  uint64_t next_deadline_ = UINT64_MAX;
  // Trigger source of the OnTriggerState call currently dispatching, so the
  // per-event callbacks can attribute their FireInfo (single-threaded).
  TriggerSource dispatch_source_ = TriggerSource::kBackupIntr;
  // Cached clock read stamped into FireInfo::fired_tick for the drain batch
  // in progress; seeded by ExpireDue/PolicyCheck from the read they already
  // perform and refreshed every max_dispatches_per_clock_read dispatches.
  uint64_t batch_fired_tick_ = 0;
  uint32_t batch_reads_left_ = 0;
  // Handlers invoked by the OnTriggerState call in progress (policy mode).
  size_t dispatched_this_check_ = 0;
  // SoftEventId -> current TimerId for events whose queue entry was replaced
  // by a deferral; consulted by CancelSoftEvent. Policy mode only (the
  // no-policy path never defers, so CancelSoftEvent skips the probe).
  std::unordered_map<uint64_t, TimerId> deferred_remap_;
  // Mutable so stats() can refresh the slab occupancy fields on read.
  mutable Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_SOFT_TIMER_FACILITY_H_
