// QueueClaim / NextDueGate: the M-queues-on-N-cores claim protocol behind
// MultiQueuePoller (src/net/multi_queue_poller.h) and the ShardedRtHost
// queue-work integration.
//
// One QueueClaim per NIC rx queue. A core's trigger loop scans the queue
// set for the most-overdue unclaimed due queue, claims it with a single CAS
// on the claim word, polls it under the queue's own PollGovernor, and
// releases it with the governor's next-poll deadline:
//
//   scanner:  peek claim word (relaxed)          owner:  poll queue
//             peek deadline  (relaxed)                   mutate governor state
//             TryClaim()  // CAS 0->core+1, acq          deadline.store(next)
//             re-read deadline (now exact)               claim.store(0, release)
//             poll ...                                   gate.Lower(next)
//
// The claim word is the queue's lock: its release-store/acquire-CAS pairing
// is what publishes the owner's governor and drain-cursor mutations (all
// plain non-atomic state) to the next claimant. Everything else in the
// protocol is deliberately tolerant of staleness:
//
//  * The deadline word may be read without holding the claim. A stale read
//    is always CONSERVATIVE: while a queue is claimed its deadline word
//    still holds the old (due, i.e. earlier) value, and the owner only ever
//    publishes a later one. So any min computed over peeked deadlines is a
//    lower bound on the true earliest next-due tick.
//
//  * NextDueGate is the set-wide fast gate: one load + compare lets a core
//    skip the O(M) scan when nothing can be due. It only LOWERS eagerly
//    (Lower() on every release) and only ADVANCES through TryAdvance(), a
//    single CAS from the value the scanner observed BEFORE its scan, with a
//    min computed over every queue's peeked deadline - claimed queues
//    included, which is what makes the advance safe (see above; a claimed
//    queue's stale deadline undershoots whatever its owner will publish).
//    A racing Lower() changes the gate value and the advance CAS fails, so
//    the gate never moves past a concurrently published deadline; the
//    invariant `gate <= every queue's next-due tick` holds in every
//    interleaving (model-checked in tests/model_check_test.cc, including
//    the weakened advance rule that breaks it).
//
// No queue is ever double-polled (CAS exclusivity) and no due queue is
// stranded when its owner parks: a released queue's deadline is folded into
// the gate before the owner can sleep, and ShardedRtHost bounds every
// shard's sleep by the gate, so SOME core wakes by the earliest deadline.
//
// Traits/Ordering parameters: see src/core/atomics_traits.h. Production uses
// the defaults; never override Ordering outside the model-check suite.

#ifndef SOFTTIMER_SRC_CORE_QUEUE_CLAIM_H_
#define SOFTTIMER_SRC_CORE_QUEUE_CLAIM_H_

#include <atomic>
#include <cstdint>

#include "src/core/atomics_traits.h"

namespace softtimer {

// Shipped orderings for the claim/release protocol.
struct QueueClaimOrdering {
  // ordering: acquire on the successful claim CAS - pairs with kReleaseStore
  // so the new owner observes the previous owner's governor/drain mutations.
  static constexpr std::memory_order kClaimCas = std::memory_order_acquire;
  // ordering: a failed CAS learns only "someone else owns it"; the scanner
  // retries or moves on without touching queue state.
  static constexpr std::memory_order kClaimFailLoad = std::memory_order_relaxed;
  // ordering: scan peek of the claim word; stale values only mis-rank the
  // candidate scan (the CAS is what decides ownership).
  static constexpr std::memory_order kPeekLoad = std::memory_order_relaxed;
  // ordering: the deadline store needs no ordering of its own - the claim
  // word's release store right after it covers it for claim holders, and
  // claimless peeks are conservative by value (stale = earlier = safe).
  static constexpr std::memory_order kDeadlineStore = std::memory_order_relaxed;
  // ordering: claimless deadline peek; see kDeadlineStore.
  static constexpr std::memory_order kDeadlineLoad = std::memory_order_relaxed;
  // ordering: release on the claim-word clear - pairs with kClaimCas, so the
  // next claim holder observes this owner's queue mutations (governor state,
  // drain cursor, deadline word).
  static constexpr std::memory_order kReleaseStore = std::memory_order_release;
};

// Shipped orderings for the set-wide next-due gate. The gate's correctness
// is value-based (single-variable CAS total order + conservative deadline
// peeks), so every access is relaxed.
struct NextDueGateOrdering {
  // ordering: gate reads feed a heuristic skip / sleep bound; the RMW total
  // order on the gate word itself is what the no-strand argument uses.
  static constexpr std::memory_order kGateLoad = std::memory_order_relaxed;
  // ordering: Lower/TryAdvance are CAS loops on one word; coherence gives
  // them a total order and the advance CAS fails if a Lower intervened.
  static constexpr std::memory_order kGateCas = std::memory_order_relaxed;
};

// Per-queue claim word + published next-poll deadline.
template <typename Traits = StdAtomicsTraits,
          typename Ordering = QueueClaimOrdering>
class QueueClaim {
 public:
  // Scanner side: attempt to take the queue for `core`. True = this core is
  // now the single owner and synchronized with the previous owner's writes.
  // SOFTTIMER_HOT
  bool TryClaim(uint32_t core) {
    uint32_t expected = 0;
    return claim_.compare_exchange_strong(expected, core + 1,
                                          Ordering::kClaimCas);
  }

  // Owner side: publish the queue's next-poll deadline and release the
  // claim. Every plain write the owner made while holding the claim is
  // published by the release store.
  // SOFTTIMER_HOT
  void Release(uint64_t next_due_tick) {
    deadline_.store(next_due_tick, Ordering::kDeadlineStore);
    claim_.store(0, Ordering::kReleaseStore);
  }

  // Scanner peeks (no claim required; see header comment on staleness).
  uint64_t deadline_peek() const {
    return deadline_.load(Ordering::kDeadlineLoad);
  }
  bool claimed_peek() const {
    return claim_.load(Ordering::kPeekLoad) != 0;
  }
  // Owner+1 of the current claim holder, 0 when unclaimed (diagnostics).
  uint32_t owner_peek() const { return claim_.load(Ordering::kPeekLoad); }

  // Owner-side exact read (claim held, so the value is the one this owner
  // last published or inherited through the acquire CAS).
  uint64_t deadline_owned() const {
    return deadline_.load(Ordering::kDeadlineLoad);
  }

 private:
  typename Traits::template Atomic<uint32_t> claim_{0};
  // Absolute tick the queue next wants polling; 0 initially = due at once.
  typename Traits::template Atomic<uint64_t> deadline_{0};
};

// Set-wide earliest-next-due hint: always <= the true earliest next-due
// tick over all queues, so `gate > now` proves nothing is due, while a low
// gate only costs a scan.
template <typename Traits = StdAtomicsTraits,
          typename Ordering = NextDueGateOrdering>
class NextDueGate {
 public:
  // SOFTTIMER_HOT
  uint64_t Load() const { return gate_.load(Ordering::kGateLoad); }

  // Releaser side: fold a freshly published deadline in (monotone min).
  // SOFTTIMER_HOT
  void Lower(uint64_t tick) {
    uint64_t cur = gate_.load(Ordering::kGateLoad);
    while (tick < cur &&
           !gate_.compare_exchange_strong(cur, tick, Ordering::kGateCas)) {
      // cur reloaded by the failed CAS; loop re-tests.
    }
  }

  // Scanner side, after a scan that found nothing due: advance the gate
  // from the value observed before the scan to the min of every deadline
  // peeked during it. A single CAS - if any release Lower()ed the gate in
  // between, the advance fails and the lower value wins.
  // SOFTTIMER_HOT
  bool TryAdvance(uint64_t observed, uint64_t min_seen) {
    if (min_seen <= observed) {
      return false;  // nothing to advance past
    }
    uint64_t expected = observed;
    return gate_.compare_exchange_strong(expected, min_seen,
                                         Ordering::kGateCas);
  }

 private:
  typename Traits::template Atomic<uint64_t> gate_{0};
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_QUEUE_CLAIM_H_
