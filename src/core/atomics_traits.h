// Atomics-traits shim: the single seam between the lock-free runtime code
// and the memory model it executes under.
//
// Every templated concurrency primitive in this repository (SpscRing,
// RemotePendingFlag, SleeperGate) names its atomics through a Traits
// parameter instead of using std::atomic directly:
//
//   typename Traits::template Atomic<uint64_t> pos_;
//   Traits::ThreadFence(std::memory_order_seq_cst);
//   Traits::OnNonAtomicRead(&slot);   // instrumentation hook, no-op here
//
// Production code instantiates the default, StdAtomicsTraits, which maps
// 1:1 onto std::atomic / std::atomic_thread_fence with zero-cost no-op
// instrumentation hooks - the compiled hot path is bit-identical to writing
// std::atomic by hand. The model checker (src/check/model_atomic.h) provides
// ModelCheckerTraits, which routes the *same* primitive code through
// simulated store buffers, an exhaustive-interleaving scheduler, and
// vector-clock race detection for the non-atomic hooks.
//
// Rules enforced by tools/lint_hotpath.py:
//  * Files that declare a Traits template parameter must not name
//    std::atomic directly (outside this header) - otherwise the checker
//    silently stops seeing part of the protocol.
//  * Non-seq_cst memory orderings everywhere in the concurrency files carry
//    a `// ordering:` rationale comment.

#ifndef SOFTTIMER_SRC_CORE_ATOMICS_TRAITS_H_
#define SOFTTIMER_SRC_CORE_ATOMICS_TRAITS_H_

#include <atomic>

namespace softtimer {

struct StdAtomicsTraits {
  template <typename T>
  using Atomic = std::atomic<T>;

  static void ThreadFence(std::memory_order order) {
    std::atomic_thread_fence(order);
  }

  // Instrumentation hooks around non-atomic accesses to data published
  // through the atomics above (e.g. ring slots). The model checker turns
  // these into scheduling points with happens-before race detection; in
  // production they compile to nothing.
  static void OnNonAtomicRead(const volatile void* /*addr*/) {}
  static void OnNonAtomicWrite(const volatile void* /*addr*/) {}

  // Scheduling hint for spin/retry loops in model-checked drivers; a no-op
  // on real hardware (the OS scheduler is preemptive, the model one is not).
  static void Yield() {}
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_ATOMICS_TRAITS_H_
