// Trigger-state sources (Section 3 and Table 2 of the paper).
//
// A trigger state is a point in kernel execution where invoking a soft-timer
// handler costs no more than a function call. The enum mirrors the paper's
// event-source accounting for the ST-Apache workload (Table 2) plus the two
// sources the paper treats specially (the idle loop and the backup periodic
// interrupt).

#ifndef SOFTTIMER_SRC_CORE_TRIGGER_H_
#define SOFTTIMER_SRC_CORE_TRIGGER_H_

#include <array>
#include <cstdint>

namespace softtimer {

enum class TriggerSource : uint8_t {
  kSyscall = 0,     // system-call entry/exit
  kIpOutput = 1,    // IP packet transmission loop
  kIpIntr = 2,      // network-interface interrupt tail
  kTcpIpOthers = 3, // other network-subsystem loops (TCP timer processing, ...)
  kTrap = 4,        // exceptions: page fault, arithmetic, ...
  kIdleLoop = 5,    // idle-loop poll
  kBackupIntr = 6,  // periodic backup timer interrupt tail
  kOtherIntr = 7,   // non-network device interrupt tail (disk, ...)
};

inline constexpr size_t kNumTriggerSources = 8;

// The five sources the paper's Table 2 accounts for.
inline constexpr std::array<TriggerSource, 5> kTable2Sources = {
    TriggerSource::kSyscall, TriggerSource::kIpOutput, TriggerSource::kIpIntr,
    TriggerSource::kTcpIpOthers, TriggerSource::kTrap,
};

constexpr const char* TriggerSourceName(TriggerSource s) {
  switch (s) {
    case TriggerSource::kSyscall:
      return "syscalls";
    case TriggerSource::kIpOutput:
      return "ip-output";
    case TriggerSource::kIpIntr:
      return "ip-intr";
    case TriggerSource::kTcpIpOthers:
      return "tcpip-others";
    case TriggerSource::kTrap:
      return "traps";
    case TriggerSource::kIdleLoop:
      return "idle-loop";
    case TriggerSource::kBackupIntr:
      return "backup-intr";
    case TriggerSource::kOtherIntr:
      return "other-intr";
  }
  return "?";
}

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_CORE_TRIGGER_H_
