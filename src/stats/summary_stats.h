// Streaming summary statistics (Welford's online algorithm).
//
// Used where sample counts are large (millions of trigger intervals) and only
// count/mean/stddev/min/max are needed. When percentiles are required, use
// SampleSet instead.

#ifndef SOFTTIMER_SRC_STATS_SUMMARY_STATS_H_
#define SOFTTIMER_SRC_STATS_SUMMARY_STATS_H_

#include <cstdint>
#include <limits>

namespace softtimer {

class SummaryStats {
 public:
  void Add(double x);

  // Merges another accumulator into this one (parallel-combinable).
  void Merge(const SummaryStats& o);

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  // Population variance / stddev (divide by n). The paper reports stddev over
  // millions of samples, where the n vs n-1 distinction is immaterial.
  double variance() const;
  double stddev() const;

  void Reset() { *this = SummaryStats(); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_STATS_SUMMARY_STATS_H_
