// Minimal CSV emission for experiment outputs, so distributions and series
// from the benches can be plotted externally (gnuplot/matplotlib). Used by
// the Figure 4/5/6 benches behind --dump-dir.

#ifndef SOFTTIMER_SRC_STATS_CSV_WRITER_H_
#define SOFTTIMER_SRC_STATS_CSV_WRITER_H_

#include <string>
#include <vector>

#include "src/stats/sample_set.h"
#include "src/stats/windowed_median.h"

namespace softtimer {

class CsvWriter {
 public:
  // Opens (truncates) `path`. ok() reports whether the open succeeded.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  void WriteHeader(const std::vector<std::string>& columns);
  void WriteRow(const std::vector<double>& values);
  void WriteRow(const std::vector<std::string>& values);

 private:
  std::FILE* file_ = nullptr;
};

// Dumps a CDF curve of `samples` (`points` quantiles) as "x,fraction" rows.
// Returns false if the file could not be written.
bool WriteCdfCsv(const std::string& path, const SampleSet& samples, size_t points = 200);

// Dumps windowed medians as "window_start_us,median,count" rows.
bool WriteWindowedMediansCsv(const std::string& path,
                             const std::vector<WindowedMedian::WindowStat>& windows);

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_STATS_CSV_WRITER_H_
