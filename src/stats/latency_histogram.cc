#include "src/stats/latency_histogram.h"

namespace softtimer {

uint64_t LatencyHistogram::BucketLower(size_t index) {
  size_t tier = index / kSubBuckets;
  size_t sub = index % kSubBuckets;
  if (tier == 0) {
    return sub;
  }
  // Tier t >= 1 spans [2^(t+3), 2^(t+4)) in sub-buckets of width 2^(t-1).
  uint64_t width = 1ull << (tier - 1);
  uint64_t base = width * kSubBuckets;
  return base + sub * width;
}

uint64_t LatencyHistogram::BucketUpper(size_t index) {
  size_t tier = index / kSubBuckets;
  if (tier == 0) {
    return BucketLower(index);
  }
  uint64_t width = 1ull << (tier - 1);
  uint64_t lower = BucketLower(index);
  // Saturate at the top of the 64-bit range (the last tier's final bucket).
  return lower + width - 1 >= lower ? lower + width - 1 : UINT64_MAX;
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0.0) {
    return min();
  }
  // Rank of the requested quantile, 1-based, clamped into [1, count_].
  uint64_t rank =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
  if (rank < 1) {
    rank = 1;
  }
  if (rank > count_) {
    rank = count_;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      uint64_t upper = BucketUpper(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ != 0) {
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }
}

}  // namespace softtimer
