// Exact-percentile sample container.
//
// Stores every sample (optionally with a cap + uniform reservoir sampling so
// memory stays bounded on multi-million-sample runs) and computes exact order
// statistics over what it holds. Streaming moments (mean/stddev/min/max) are
// always exact over the full stream even when the reservoir drops samples.

#ifndef SOFTTIMER_SRC_STATS_SAMPLE_SET_H_
#define SOFTTIMER_SRC_STATS_SAMPLE_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/stats/summary_stats.h"

namespace softtimer {

class SampleSet {
 public:
  // `reservoir_cap` == 0 means "keep everything".
  explicit SampleSet(size_t reservoir_cap = 0);

  void Add(double x);

  // Exact over the full stream.
  uint64_t count() const { return summary_.count(); }
  double mean() const { return summary_.mean(); }
  double stddev() const { return summary_.stddev(); }
  double min() const { return summary_.min(); }
  double max() const { return summary_.max(); }

  // Order statistics over the retained samples. `p` in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // Fraction (0..1) of retained samples strictly greater than x.
  double FractionAbove(double x) const;

  // CDF evaluated at `xs` (fraction of retained samples <= x, per x).
  std::vector<double> CdfAt(const std::vector<double>& xs) const;

  // (x, cumulative fraction) pairs at `points` evenly spaced quantiles,
  // suitable for plotting Figure 4 / Figure 6 style curves.
  struct CdfPoint {
    double x;
    double fraction;
  };
  std::vector<CdfPoint> CdfCurve(size_t points) const;

  const std::vector<double>& retained() const { return samples_; }

 private:
  void SortIfNeeded() const;

  SummaryStats summary_;
  size_t cap_;
  uint64_t stream_pos_ = 0;  // total Adds seen, for reservoir sampling
  uint64_t reservoir_rng_ = 0x853C49E6748FEA9BULL;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_STATS_SAMPLE_SET_H_
