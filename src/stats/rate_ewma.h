// Exponentially-weighted moving average, used by the poll governor to track
// packets found per poll (Section 4.2) and by rate meters.

#ifndef SOFTTIMER_SRC_STATS_RATE_EWMA_H_
#define SOFTTIMER_SRC_STATS_RATE_EWMA_H_

#include <cassert>

namespace softtimer {

class RateEwma {
 public:
  // `alpha` is the weight of the newest observation, in (0, 1].
  explicit RateEwma(double alpha) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  void Observe(double x) {
    if (!primed_) {
      value_ = x;
      primed_ = true;
    } else {
      value_ += alpha_ * (x - value_);
    }
  }

  bool primed() const { return primed_; }
  double value() const { return value_; }
  void Reset() { primed_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_STATS_RATE_EWMA_H_
