// Per-window order statistics over a timestamped value stream.
//
// Figure 5 of the paper plots the median trigger-state interval computed over
// consecutive 1 ms and 10 ms windows of a run. WindowedMedian buckets
// (time, value) pairs into fixed-width windows and reports the median of each
// closed window.

#ifndef SOFTTIMER_SRC_STATS_WINDOWED_MEDIAN_H_
#define SOFTTIMER_SRC_STATS_WINDOWED_MEDIAN_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace softtimer {

class WindowedMedian {
 public:
  struct WindowStat {
    SimTime window_start;
    double median;
    size_t count;
  };

  WindowedMedian(SimTime origin, SimDuration window);

  // Values must arrive with non-decreasing timestamps.
  void Add(SimTime t, double value);

  // Closes the current window (if it holds samples) and returns all windows.
  std::vector<WindowStat> Finish();

  const std::vector<WindowStat>& windows() const { return windows_; }

 private:
  void CloseWindow();

  SimTime window_start_;
  SimDuration window_;
  std::vector<double> current_;
  std::vector<WindowStat> windows_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_STATS_WINDOWED_MEDIAN_H_
