#include "src/stats/sample_set.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace softtimer {

SampleSet::SampleSet(size_t reservoir_cap) : cap_(reservoir_cap) {}

void SampleSet::Add(double x) {
  summary_.Add(x);
  ++stream_pos_;
  if (cap_ == 0 || samples_.size() < cap_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Algorithm R reservoir sampling with an internal xorshift stream so that
  // reservoir behaviour never consumes from experiment RNGs.
  reservoir_rng_ ^= reservoir_rng_ << 13;
  reservoir_rng_ ^= reservoir_rng_ >> 7;
  reservoir_rng_ ^= reservoir_rng_ << 17;
  uint64_t slot = reservoir_rng_ % stream_pos_;
  if (slot < cap_) {
    samples_[slot] = x;
    sorted_ = false;
  }
}

void SampleSet::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  assert(p >= 0.0 && p <= 100.0);
  // Linear interpolation between closest ranks (the "C = 1" convention).
  double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::FractionAbove(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) / static_cast<double>(samples_.size());
}

std::vector<double> SampleSet::CdfAt(const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  SortIfNeeded();
  for (double x : xs) {
    if (samples_.empty()) {
      out.push_back(0.0);
      continue;
    }
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    out.push_back(static_cast<double>(it - samples_.begin()) /
                  static_cast<double>(samples_.size()));
  }
  return out;
}

std::vector<SampleSet::CdfPoint> SampleSet::CdfCurve(size_t points) const {
  std::vector<CdfPoint> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  SortIfNeeded();
  out.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    double f = static_cast<double>(i + 1) / static_cast<double>(points);
    size_t idx = std::min(samples_.size() - 1,
                          static_cast<size_t>(f * static_cast<double>(samples_.size())));
    out.push_back(CdfPoint{samples_[idx], f});
  }
  return out;
}

}  // namespace softtimer
