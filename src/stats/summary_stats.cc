#include "src/stats/summary_stats.h"

#include <cmath>

namespace softtimer {

void SummaryStats::Add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) {
    min_ = x;
  }
  if (x > max_) {
    max_ = x;
  }
}

void SummaryStats::Merge(const SummaryStats& o) {
  if (o.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = o;
    return;
  }
  double delta = o.mean_ - mean_;
  uint64_t n = n_ + o.n_;
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(o.n_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += o.m2_ + delta * delta * na * nb / static_cast<double>(n);
  n_ = n;
  if (o.min_ < min_) {
    min_ = o.min_;
  }
  if (o.max_ > max_) {
    max_ = o.max_;
  }
}

double SummaryStats::variance() const {
  if (n_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

}  // namespace softtimer
