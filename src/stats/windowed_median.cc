#include "src/stats/windowed_median.h"

#include <algorithm>
#include <cassert>

namespace softtimer {

WindowedMedian::WindowedMedian(SimTime origin, SimDuration window)
    : window_start_(origin), window_(window) {
  assert(window > SimDuration::Zero());
}

void WindowedMedian::Add(SimTime t, double value) {
  assert(t >= window_start_);
  while (t >= window_start_ + window_) {
    CloseWindow();
    window_start_ += window_;
  }
  current_.push_back(value);
}

void WindowedMedian::CloseWindow() {
  if (current_.empty()) {
    return;
  }
  std::sort(current_.begin(), current_.end());
  size_t n = current_.size();
  double median = (n % 2 == 1) ? current_[n / 2]
                               : 0.5 * (current_[n / 2 - 1] + current_[n / 2]);
  windows_.push_back(WindowStat{window_start_, median, n});
  current_.clear();
}

std::vector<WindowedMedian::WindowStat> WindowedMedian::Finish() {
  CloseWindow();
  return windows_;
}

}  // namespace softtimer
