#include "src/stats/csv_writer.h"

#include <cstdio>

namespace softtimer {

CsvWriter::CsvWriter(const std::string& path) : file_(std::fopen(path.c_str(), "w")) {}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  WriteRow(columns);
}

void CsvWriter::WriteRow(const std::vector<std::string>& values) {
  if (file_ == nullptr) {
    return;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    std::fprintf(file_, "%s%s", i ? "," : "", values[i].c_str());
  }
  std::fprintf(file_, "\n");
}

void CsvWriter::WriteRow(const std::vector<double>& values) {
  if (file_ == nullptr) {
    return;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    std::fprintf(file_, "%s%.9g", i ? "," : "", values[i]);
  }
  std::fprintf(file_, "\n");
}

bool WriteCdfCsv(const std::string& path, const SampleSet& samples, size_t points) {
  CsvWriter w(path);
  if (!w.ok()) {
    return false;
  }
  w.WriteHeader({"x", "fraction"});
  for (const auto& p : samples.CdfCurve(points)) {
    w.WriteRow(std::vector<double>{p.x, p.fraction});
  }
  return true;
}

bool WriteWindowedMediansCsv(const std::string& path,
                             const std::vector<WindowedMedian::WindowStat>& windows) {
  CsvWriter w(path);
  if (!w.ok()) {
    return false;
  }
  w.WriteHeader({"window_start_us", "median_us", "samples"});
  for (const auto& ws : windows) {
    w.WriteRow(std::vector<double>{ws.window_start.ToMicros(), ws.median,
                                   static_cast<double>(ws.count)});
  }
  return true;
}

}  // namespace softtimer
