// Fixed-bucket latency histogram for hot-path lateness instrumentation.
//
// HdrHistogram-style layout over uint64 tick values: a power-of-two tier per
// leading-bit position, 16 linear sub-buckets per tier, so the relative
// quantization error is bounded by 1/16 (~6%) at every magnitude while the
// whole structure is one fixed array - Record() is a handful of bit
// operations and one increment, no allocation ever, so it is safe inside
// SOFTTIMER_HOT dispatch paths (the shard trigger loops feed one of these
// per dispatched handler).
//
// Percentile() returns the UPPER bound of the sub-bucket containing the
// requested rank: a reported percentile is always >= the true sample value,
// so a benchmark gate of the form "p99.9 < budget" can only fail spuriously
// toward safety, never pass spuriously. min/max/count/sum are tracked
// exactly alongside the buckets.
//
// Both bench_rto's loss-phase lateness report and bench_shard_scaling's
// isolated-shard SLO phase gate on this class, so the two benches share one
// metric definition (see DESIGN.md section 14).

#ifndef SOFTTIMER_SRC_STATS_LATENCY_HISTOGRAM_H_
#define SOFTTIMER_SRC_STATS_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace softtimer {

class LatencyHistogram {
 public:
  // 16 linear buckets for values 0..15, then 16 sub-buckets per power-of-two
  // tier up to the full 64-bit range.
  static constexpr size_t kSubBucketBits = 4;
  static constexpr size_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr size_t kTiers = 64 - kSubBucketBits;  // tiers past the base
  static constexpr size_t kNumBuckets = kSubBuckets * (kTiers + 1);

  // SOFTTIMER_HOT
  void Record(uint64_t value) {
    ++counts_[BucketIndex(value)];
    ++count_;
    sum_ += value;
    if (value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  // Exact extremes over everything recorded (0 when empty).
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return count_ ? max_ : 0; }

  // Upper bound of the bucket holding the sample at rank ceil(p/100 * count),
  // clamped to the exact max (the top bucket's nominal bound can exceed any
  // recorded value). `p` in [0, 100]; 0 when empty.
  uint64_t Percentile(double p) const;

  void Merge(const LatencyHistogram& other);
  void Reset() { *this = LatencyHistogram(); }

  // Invokes fn(lower, upper, count) for every non-empty bucket in ascending
  // value order; `upper` is inclusive. For JSON dumps and tests.
  template <typename Fn>
  void ForEachNonZero(Fn&& fn) const {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (counts_[i] != 0) {
        fn(BucketLower(i), BucketUpper(i), counts_[i]);
      }
    }
  }

  // Bucket geometry, exposed for tests.
  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) {
      return static_cast<size_t>(value);
    }
    // Leading-bit tier, then the next kSubBucketBits bits select the linear
    // sub-bucket within it: tier t >= 1 spans [16*2^(t-1), 16*2^t) in 16
    // sub-buckets of width 2^(t-1).
    int msb = 63 - __builtin_clzll(value);
    size_t tier = static_cast<size_t>(msb) - (kSubBucketBits - 1);
    size_t sub = static_cast<size_t>(value >> (msb - kSubBucketBits)) &
                 (kSubBuckets - 1);
    return tier * kSubBuckets + sub;
  }
  static uint64_t BucketLower(size_t index);
  static uint64_t BucketUpper(size_t index);

 private:
  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_STATS_LATENCY_HISTOGRAM_H_
