// TCP sender endpoint.
//
// Two transmission modes, matching the comparison of Section 5.8:
//
//   kSelfClocked - classic TCP: slow start from a configurable initial
//                  window, congestion avoidance past ssthresh, transmissions
//                  paced purely by returning ACKs, fast retransmit on
//                  triple-duplicate ACKs and a coarse retransmission timer.
//
//   kRateBased   - the paper's extension: the transfer skips slow start and
//                  transmits at a target rate (assumed-known path capacity)
//                  using soft-timer events scheduled through an AdaptivePacer
//                  (Section 4.1). ACKs are still consumed for reliability
//                  accounting, but do not clock transmissions.
//
//   kWheelPaced  - rate-based transmission driven externally by a pacing
//                  wheel (src/pacing): the sender schedules no soft events
//                  of its own; the wheel's batched drain calls EmitPaced()
//                  with a packet grant and the sender emits that burst
//                  through one ip-output trigger state. Same pacing
//                  arithmetic as kRateBased (the wheel embeds PacedTrain),
//                  but the per-flow soft event disappears — one wheel event
//                  paces every flow on the shard.
//
// The sender runs on a host Kernel so every segment transmission passes
// through an ip-output trigger state (which, as in the paper, is itself a
// source of soft-timer dispatch opportunities).

#ifndef SOFTTIMER_SRC_TCP_TCP_SENDER_H_
#define SOFTTIMER_SRC_TCP_TCP_SENDER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/adaptive_pacer.h"
#include "src/machine/kernel.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace softtimer {

class TcpSender {
 public:
  enum class Mode { kSelfClocked, kRateBased, kWheelPaced };

  struct Config {
    Mode mode = Mode::kSelfClocked;
    uint32_t mss = kDefaultMss;
    uint64_t flow_id = 0;

    // --- self-clocked parameters ---
    // FreeBSD 2.2.6 starts WAN connections at one segment.
    uint32_t initial_cwnd_segments = 1;
    uint64_t ssthresh_bytes = UINT64_MAX;
    // Receiver window (the paper's setup uses large tuned buffers).
    uint64_t rwnd_bytes = UINT64_MAX;
    uint32_t dupack_threshold = 3;
    // Cap on segments released by one ACK (Fall & Floyd's maxburst; 0 = off).
    uint32_t max_burst_segments = 0;
    // Retransmission timer. With adaptive_rto the timer follows Jacobson's
    // estimator (RTO = SRTT + 4 * RTTVAR, Karn-sampled); rto_initial applies
    // until the first RTT sample.
    bool adaptive_rto = true;
    SimDuration rto_initial = SimDuration::Seconds(1.5);
    SimDuration rto_min = SimDuration::Millis(200);
    SimDuration rto_max = SimDuration::Seconds(64);

    // --- rate-based parameters (measurement-clock ticks) ---
    uint64_t pace_target_interval_ticks = 120;
    uint64_t pace_min_burst_interval_ticks = 12;
    // When a pace event arrives several target intervals late (trigger
    // drought), send up to this many segments in one bounded catch-up burst
    // instead of a convoy of stale events. 0 = one segment per event (seed
    // behaviour).
    uint32_t pace_max_coalesced_burst = 0;
  };

  // `kernel` hosts the sender (ip-output triggers, soft timers for pacing).
  TcpSender(Kernel* kernel, Config config);

  const Config& config() const { return config_; }

  // Transport towards the receiver.
  void set_packet_sender(std::function<void(Packet)> fn) { packet_sender_ = std::move(fn); }

  // Batched transport for EmitPaced bursts (e.g. Nic::EnqueueBurst). When
  // unset, bursts fall back to per-packet packet_sender_ calls.
  void set_burst_sender(std::function<void(const Packet*, size_t)> fn) {
    burst_sender_ = std::move(fn);
  }

  // Wheel integration (kWheelPaced): `resume` is called when the sender has
  // data to pace (transfer start, RTO go-back-N) and should (re)activate
  // the flow on its pacing wheel; `pause` when it no longer does (transfer
  // complete). Install before StartTransfer; src/tcp/tcp_paced_flow.h wires
  // these to a PacingWheelHost.
  void set_wheel_hooks(std::function<void()> resume, std::function<void()> pause) {
    wheel_resume_ = std::move(resume);
    wheel_pause_ = std::move(pause);
  }

  // Transmits up to `budget` segments back-to-back through one ip-output
  // trigger state (the pacing wheel's batched dispatch path; kWheelPaced
  // only). Returns segments actually sent — less than `budget` when the
  // transfer runs out of unsent data, in which case the caller should
  // deactivate the flow (the resume hook re-activates it if an RTO reopens
  // the window).
  uint32_t EmitPaced(uint32_t budget);

  // Begins a transfer of `bytes`; `on_complete` runs when every byte has
  // been cumulatively acknowledged.
  void StartTransfer(uint64_t bytes, std::function<void()> on_complete = {});

  // Ingress for ACK packets.
  void OnAck(const Packet& p);

  uint64_t cwnd_bytes() const { return cwnd_; }
  uint64_t bytes_acked() const { return snd_una_; }
  bool transfer_complete() const { return complete_; }
  // Smoothed RTT estimate; zero until the first sample.
  SimDuration srtt() const { return srtt_; }
  SimDuration current_rto() const { return rto_current_; }

  struct Stats {
    uint64_t segments_sent = 0;
    uint64_t retransmits = 0;
    uint64_t fast_retransmits = 0;
    uint64_t timeouts = 0;
    uint64_t acks_received = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void TrySendWindow(uint32_t burst_budget);
  void SendSegmentAt(uint64_t seq, bool retransmit);
  void SchedulePacedSend();
  void OnPaceEvent();
  void ArmRto();
  void OnRtoFire();
  void MaybeStartRttProbe(uint64_t seq);
  void OnRttSample(SimDuration sample);
  void CompleteIfDone();

  Kernel* kernel_;
  Config config_;
  std::function<void(Packet)> packet_sender_;
  std::function<void(const Packet*, size_t)> burst_sender_;
  std::function<void()> wheel_resume_;
  std::function<void()> wheel_pause_;
  // EmitPaced assembles bursts here; grows to the largest grant and is
  // reused (no steady-state allocation).
  std::vector<Packet> burst_scratch_;
  AdaptivePacer pacer_;

  uint64_t transfer_bytes_ = 0;
  std::function<void()> on_complete_;
  bool active_ = false;
  bool complete_ = false;

  uint64_t snd_una_ = 0;   // lowest unacknowledged byte
  uint64_t snd_next_ = 0;  // next byte to transmit
  uint64_t snd_max_ = 0;   // highest byte ever transmitted (EmitPaced uses
                           // this to tell go-back-N resends from fresh data)
  uint64_t cwnd_ = 0;
  uint64_t ssthresh_ = 0;
  uint32_t dupacks_ = 0;
  // Highest byte sent before entering the current recovery episode.
  uint64_t recover_ = 0;
  bool in_recovery_ = false;

  SoftEventId pace_event_;
  EventHandle rto_event_;
  SimDuration rto_current_;

  // Jacobson/Karn RTT estimation: one timed segment at a time, invalidated
  // by any retransmission (a retransmitted segment's ACK is ambiguous).
  bool rtt_probe_active_ = false;
  uint64_t rtt_probe_end_seq_ = 0;
  SimTime rtt_probe_sent_at_;
  SimDuration srtt_;
  SimDuration rttvar_;
  bool have_srtt_ = false;

  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TCP_TCP_SENDER_H_
