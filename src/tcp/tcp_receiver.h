// TCP receiver endpoint (the client side of the paper's WAN experiments).
//
// Models the receive-side behaviour that shapes the paper's slow-start
// results: cumulative ACKs, ACK-every-other-segment, and FreeBSD's periodic
// 200 ms delayed-ACK sweep (a lone segment waits for the sweep, which is why
// small transfers pay hundreds of milliseconds under regular TCP in
// Tables 6/7). Out-of-order segments generate duplicate ACKs so the sender's
// fast-retransmit logic can be exercised under loss.
//
// An optional application-read delay models the big-ACK phenomenon of
// Appendix A.3 (ACKs withheld until the application drains the socket
// buffer).

#ifndef SOFTTIMER_SRC_TCP_TCP_RECEIVER_H_
#define SOFTTIMER_SRC_TCP_TCP_RECEIVER_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace softtimer {

class TcpReceiver {
 public:
  struct Config {
    uint32_t mss = kDefaultMss;
    // Send a cumulative ACK after this many unacknowledged segments.
    int ack_every = 2;
    // Period of the delayed-ACK sweep timer (FreeBSD tcp_fasttimo: 200 ms).
    SimDuration delack_sweep_period = SimDuration::Millis(200);
    // Phase of the first sweep relative to construction (a real sweep runs
    // at fixed wall-clock boundaries; the expected extra delay for a lone
    // segment is half the period).
    SimDuration delack_sweep_phase = SimDuration::Millis(100);
    // If nonzero, ACK decisions wait until the "application" reads the data
    // this long after arrival - the big-ACK generator of Appendix A.3.
    SimDuration app_read_delay = SimDuration::Zero();
    uint64_t flow_id = 0;
  };

  TcpReceiver(Simulator* sim, Config config);

  // Cancels the delayed-ACK sweep (lets a simulation drain its event queue).
  void Shutdown();

  // Rewinds the sequence space for a fresh stream on the same connection
  // (e.g. the next response on a persistent-HTTP connection modelled as an
  // independent byte stream).
  void ResetStream();

  // Transport used to return ACK packets to the sender.
  void set_ack_sender(std::function<void(Packet)> fn) { ack_sender_ = std::move(fn); }

  // Invoked when `bytes` of in-order data have arrived.
  void NotifyWhenReceived(uint64_t bytes, std::function<void()> cb);

  // Ingress from the network.
  void OnSegment(const Packet& p);

  uint64_t bytes_received() const { return rcv_next_; }
  SimTime last_delivery_time() const { return last_delivery_; }

  struct Stats {
    uint64_t segments = 0;
    uint64_t acks_sent = 0;
    uint64_t delack_fires = 0;   // ACKs released by the sweep timer
    uint64_t dup_acks = 0;
    uint64_t out_of_order = 0;
    // Largest number of segments covered by one ACK (big-ACK detector).
    uint64_t max_segments_per_ack = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void OnDelackSweep();
  void AppRead();
  void SendAck(bool from_sweep);

  Simulator* sim_;
  Config config_;
  std::function<void(Packet)> ack_sender_;

  uint64_t rcv_next_ = 0;       // next expected byte
  uint64_t acked_through_ = 0;  // highest byte covered by a sent ACK
  int unacked_segments_ = 0;
  bool fin_seen_ = false;
  bool ack_pending_app_read_ = false;
  SimTime last_delivery_;
  std::map<uint64_t, uint32_t> out_of_order_;  // seq -> payload length

  uint64_t notify_bytes_ = 0;
  std::function<void()> notify_cb_;
  EventHandle sweep_event_;

  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TCP_TCP_RECEIVER_H_
