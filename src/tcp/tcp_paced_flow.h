// Binds TcpSender (Mode::kWheelPaced) flows to a PacingWheelHost.
//
// The binder is the shard's BatchSink: one binder per host, any number of
// attached senders. Attach() registers the sender as a PacedFlow (pacing
// parameters lifted from the sender's Config pace_* fields, user_data
// carrying the sender pointer) and installs the sender's wheel hooks so
// transfer start / RTO go-back-N activate the flow and transfer completion
// deactivates it. On each wheel drain the binder forwards every emission
// grant to TcpSender::EmitPaced(); a short send (out of unsent data) idles
// the flow until the resume hook re-activates it.
//
// Lives in src/tcp (st_tcp links st_pacing) so the pacing library stays
// transport-agnostic.

#ifndef SOFTTIMER_SRC_TCP_TCP_PACED_FLOW_H_
#define SOFTTIMER_SRC_TCP_TCP_PACED_FLOW_H_

#include <cstdint>

#include "src/pacing/pacing_wheel.h"
#include "src/pacing/pacing_wheel_host.h"
#include "src/tcp/tcp_sender.h"

namespace softtimer {

class TcpPacedFlowBinder : public PacingWheel::BatchSink {
 public:
  // Installs itself as `host`'s sink. The host (and its wheel/facility)
  // must outlive the binder; attached senders must outlive their flows.
  explicit TcpPacedFlowBinder(PacingWheelHost* host);

  TcpPacedFlowBinder(const TcpPacedFlowBinder&) = delete;
  TcpPacedFlowBinder& operator=(const TcpPacedFlowBinder&) = delete;

  // Registers `sender` on the wheel and wires its wheel hooks. The sender's
  // Config must already be Mode::kWheelPaced. Call before StartTransfer.
  // Returns the flow id (also usable for ReRate/AddBudget via the host).
  PacedFlowId Attach(TcpSender* sender);

  // Unregisters the flow (e.g. before destroying the sender).
  bool Detach(PacedFlowId id);

  // PacingWheel::BatchSink:
  void OnPacedBatch(const PacedEmit* emits, size_t count,
                    uint64_t now_tick) override;

  struct Stats {
    uint64_t batches = 0;
    uint64_t packets_emitted = 0;
    uint64_t short_sends = 0;  // grants cut short by lack of data -> idle
  };
  const Stats& stats() const { return stats_; }

 private:
  PacingWheelHost* host_;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TCP_TCP_PACED_FLOW_H_
