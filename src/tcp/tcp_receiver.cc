#include "src/tcp/tcp_receiver.h"

#include <utility>

namespace softtimer {

TcpReceiver::TcpReceiver(Simulator* sim, Config config) : sim_(sim), config_(config) {
  sweep_event_ = sim_->ScheduleAfter(config_.delack_sweep_phase, [this] { OnDelackSweep(); });
}

void TcpReceiver::Shutdown() {
  if (sweep_event_.valid()) {
    sim_->Cancel(sweep_event_);
    sweep_event_ = EventHandle{};
  }
}

void TcpReceiver::ResetStream() {
  rcv_next_ = 0;
  acked_through_ = 0;
  unacked_segments_ = 0;
  fin_seen_ = false;
  ack_pending_app_read_ = false;
  out_of_order_.clear();
  notify_cb_ = nullptr;
  notify_bytes_ = 0;
}

void TcpReceiver::NotifyWhenReceived(uint64_t bytes, std::function<void()> cb) {
  notify_bytes_ = bytes;
  notify_cb_ = std::move(cb);
  if (rcv_next_ >= notify_bytes_ && notify_cb_) {
    auto cb2 = std::move(notify_cb_);
    notify_cb_ = nullptr;
    cb2();
  }
}

void TcpReceiver::OnDelackSweep() {
  sweep_event_ = sim_->ScheduleAfter(config_.delack_sweep_period, [this] { OnDelackSweep(); });
  if (unacked_segments_ > 0 && !ack_pending_app_read_) {
    ++stats_.delack_fires;
    SendAck(/*from_sweep=*/true);
  }
}

void TcpReceiver::OnSegment(const Packet& p) {
  ++stats_.segments;
  if (p.kind == Packet::Kind::kAck) {
    return;  // not our direction
  }
  if (p.seq > rcv_next_) {
    // Hole: buffer and emit a duplicate ACK so the sender can fast-retransmit.
    ++stats_.out_of_order;
    out_of_order_.emplace(p.seq, p.payload);
    if (p.fin) {
      fin_seen_ = true;
    }
    ++stats_.dup_acks;
    SendAck(/*from_sweep=*/false);
    return;
  }
  if (p.seq + p.payload <= rcv_next_ && p.payload > 0) {
    // Entirely old (spurious retransmission): re-ACK immediately.
    SendAck(/*from_sweep=*/false);
    return;
  }

  // In-order (possibly partially overlapping) delivery.
  rcv_next_ = p.seq + p.payload;
  if (p.fin) {
    fin_seen_ = true;
  }
  // Drain any out-of-order segments that are now contiguous.
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && it->first <= rcv_next_) {
    uint64_t end = it->first + it->second;
    if (end > rcv_next_) {
      rcv_next_ = end;
    }
    it = out_of_order_.erase(it);
  }
  last_delivery_ = sim_->now();
  ++unacked_segments_;

  if (notify_cb_ && rcv_next_ >= notify_bytes_) {
    auto cb = std::move(notify_cb_);
    notify_cb_ = nullptr;
    cb();
  }

  if (config_.app_read_delay > SimDuration::Zero()) {
    // The application drains the socket buffer later; the ACK (potentially a
    // big ACK covering many segments) goes out from that read (Appendix A.3).
    if (!ack_pending_app_read_) {
      ack_pending_app_read_ = true;
      sim_->ScheduleAfter(config_.app_read_delay, [this] { AppRead(); });
    }
    return;
  }

  if (unacked_segments_ >= config_.ack_every || fin_seen_) {
    SendAck(/*from_sweep=*/false);
  }
}

void TcpReceiver::AppRead() {
  ack_pending_app_read_ = false;
  if (unacked_segments_ > 0) {
    SendAck(/*from_sweep=*/false);
  }
}

void TcpReceiver::SendAck(bool from_sweep) {
  (void)from_sweep;
  uint64_t covered = static_cast<uint64_t>(unacked_segments_);
  if (covered > stats_.max_segments_per_ack) {
    stats_.max_segments_per_ack = covered;
  }
  unacked_segments_ = 0;
  acked_through_ = rcv_next_;
  ++stats_.acks_sent;
  if (!ack_sender_) {
    return;
  }
  Packet ack;
  ack.flow_id = config_.flow_id;
  ack.kind = Packet::Kind::kAck;
  ack.size_bytes = kAckPacketBytes;
  ack.ack_seq = rcv_next_;
  ack.sent_at = sim_->now();
  ack_sender_(ack);
}

}  // namespace softtimer
