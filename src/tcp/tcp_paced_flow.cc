#include "src/tcp/tcp_paced_flow.h"

#include <algorithm>

namespace softtimer {

TcpPacedFlowBinder::TcpPacedFlowBinder(PacingWheelHost* host) : host_(host) {
  host_->set_sink(this);
}

PacedFlowId TcpPacedFlowBinder::Attach(TcpSender* sender) {
  const TcpSender::Config& c = sender->config();
  PacedFlowConfig fc;
  fc.target_interval_ticks = c.pace_target_interval_ticks;
  fc.min_burst_interval_ticks = c.pace_min_burst_interval_ticks;
  fc.max_coalesced_burst_packets = std::max(c.pace_max_coalesced_burst, 1u);
  fc.packet_budget = 0;  // the sender bounds itself by unsent data
  fc.user_data = reinterpret_cast<uintptr_t>(sender);
  PacedFlowId id = host_->AddFlow(fc);
  if (!id.valid()) {
    return id;
  }
  PacingWheelHost* host = host_;
  sender->set_wheel_hooks([host, id] { host->Activate(id); },
                          [host, id] { host->Deactivate(id); });
  return id;
}

bool TcpPacedFlowBinder::Detach(PacedFlowId id) {
  return host_->RemoveFlow(id);
}

void TcpPacedFlowBinder::OnPacedBatch(const PacedEmit* emits, size_t count,
                                      uint64_t /*now_tick*/) {
  ++stats_.batches;
  for (size_t i = 0; i < count; ++i) {
    const PacedEmit& e = emits[i];
    TcpSender* sender = reinterpret_cast<TcpSender*>(
        static_cast<uintptr_t>(e.user_data));
    uint32_t sent = sender->EmitPaced(e.packets);
    stats_.packets_emitted += sent;
    if (sent < e.packets) {
      // Out of unsent data: idle the flow; the sender's resume hook brings
      // it back if an RTO reopens the window.
      ++stats_.short_sends;
      host_->Deactivate(e.flow);
    }
  }
}

}  // namespace softtimer
