// RtoEngine - per-segment retransmission timers at connection scale.
//
// The paper's flagship workload (Section 5, Tables 6/7) is the TCP
// retransmission timer: scheduled on every segment transmission, almost
// always cancelled microseconds-to-milliseconds later by the cumulative
// ACK. This engine is that workload made concrete on the sharded runtime:
// each connection keeps a small sliding window of in-flight segments, every
// segment carries its own RTO timer scheduled through
// ShardedSoftTimerRuntime's local fast path, and a cumulative ACK retires
// segments and cancels their timers without touching the heap.
//
// Retransmission policy (RFC 6298 shape, integer tick arithmetic):
//
//  * RTT estimation - SRTT/RTTVAR from Jacobson's estimator:
//        first sample:  SRTT = R, RTTVAR = R/2
//        afterwards:    RTTVAR = (3*RTTVAR + |SRTT - R|) / 4
//                       SRTT   = (7*SRTT + R) / 8
//        RTO = clamp(SRTT + max(1, 4*RTTVAR), rto_min, rto_max)
//  * Karn's rule - a segment that has been retransmitted never produces an
//    RTT sample (its ACK is ambiguous); samples come from the newest
//    segment a cumulative ACK retires that was sent exactly once.
//  * Exponential backoff - each expiry doubles the effective RTO
//    (rto << backoff_shift), capped at rto_max. Backoff is per connection
//    and collapses to zero on any forward progress (a cumulative ACK that
//    retires at least one segment).
//  * Give-up - after max_retransmits consecutive expiries with no forward
//    progress the engine aborts the connection: the abort callback fires,
//    DegradationPolicy::NoteConnectionReset() records the reset, and the
//    connection's remaining timers are cancelled.
//
// Threading: an engine instance belongs to ONE shard-owner thread (the
// same contract as the facility it schedules into). Remote ACKs reach the
// owning shard the sharded way - as commands through ScheduleCrossCore that
// invoke OnCumulativeAck on the owner; see tests/rto_cross_shard_test.cc.
//
// Hot path: OnSegmentSent (schedule) and OnCumulativeAck (cancel) are the
// paper's 33/18 ns pair and are SOFTTIMER_HOT - no allocation. The fire
// closure captures {engine pointer, packed segment ref} = 16 bytes, inside
// std::function's inline buffer. Connection open/close may allocate (slab
// growth, free-list push); they are per-connection, not per-segment.

#ifndef SOFTTIMER_SRC_TCP_RTO_ENGINE_H_
#define SOFTTIMER_SRC_TCP_RTO_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/core/degradation_policy.h"
#include "src/core/sharded_soft_timer_runtime.h"

namespace softtimer {

// In-flight segments tracked per connection. Small and fixed: the Tables
// 6/7 WAN transfers run a few segments of flight per connection, and a
// fixed array keeps the connection node flat (no per-connection heap).
inline constexpr uint32_t kRtoWindowSegments = 4;

class RtoEngine {
 public:
  struct Config {
    // The runtime shard this engine schedules on (its owner thread's).
    size_t shard = 0;
    // RTO before the first RTT sample (RFC 6298 says 1 s; ticks here).
    uint64_t rto_initial_ticks = 1'000'000;
    uint64_t rto_min_ticks = 200'000;
    // Backoff cap AND estimator clamp.
    uint64_t rto_max_ticks = 64'000'000;
    // Consecutive no-progress expiries before the connection is reset.
    uint32_t max_retransmits = 8;
    // Facility handler tag for this engine's timers (degradation budgets /
    // quarantine apply per tag).
    uint32_t handler_tag = 0;
  };

  // Raw function pointers, not std::function: the callbacks fire on the
  // timer hot path and must not own captured state.
  //   RetransmitFn(ctx, conn_ctx, seq_end, attempt) - segment's RTO expired
  //     (attempt = 1 for the first retransmission of this episode).
  //   AbortFn(ctx, conn_ctx) - give-up; the connection is already closed
  //     when this runs (its conn id is stale).
  using RetransmitFn = void (*)(void* ctx, void* conn_ctx, uint64_t seq_end,
                                uint32_t attempt);
  using AbortFn = void (*)(void* ctx, void* conn_ctx);
  // Measurement probe invoked on every live RTO dispatch with the
  // facility's FireInfo (scheduled tick, delta, fired tick, lateness) -
  // benches use it for p50/p99 dispatch-lateness and never-early checks.
  using FireProbeFn = void (*)(void* ctx,
                               const SoftTimerFacility::FireInfo& info);

  // `runtime` must outlive the engine; `policy` may be null (reset events
  // are then only visible in the engine's own stats).
  RtoEngine(ShardedSoftTimerRuntime* runtime, DegradationPolicy* policy,
            Config config);

  void set_retransmit_hook(RetransmitFn fn, void* ctx) {
    retransmit_fn_ = fn;
    hook_ctx_ = ctx;
  }
  void set_abort_hook(AbortFn fn, void* ctx) {
    abort_fn_ = fn;
    abort_ctx_ = ctx;
  }
  void set_fire_probe(FireProbeFn fn, void* ctx) {
    fire_probe_fn_ = fn;
    fire_probe_ctx_ = ctx;
  }

  // Opens a connection; `conn_ctx` is handed back in callbacks. Returns a
  // generation-checked id (never 0).
  uint64_t OpenConnection(void* conn_ctx);
  // Cancels every pending timer and retires the id. Safe on live ids only.
  void CloseConnection(uint64_t conn_id);

  // A segment ending at byte `seq_end` (exclusive) was transmitted: arms
  // its RTO timer at the connection's current (backed-off) RTO. Returns
  // false when the window is full (caller must wait for an ACK) or the id
  // is stale. seq_end must be strictly increasing per connection.
  // Hot path - marked SOFTTIMER_HOT at the definition.
  bool OnSegmentSent(uint64_t conn_id, uint64_t seq_end);

  // Cumulative ACK: retires every in-flight segment with seq_end <=
  // ack_seq, cancelling its timer; takes an RTT sample per Karn's rule and
  // resets backoff on forward progress. On forward progress with segments
  // still in flight it restarts the survivors' timers from now at the
  // refreshed RTO (RFC 6298 step 5.3) through the runtime's reschedule
  // path - a single in-place update per survivor, not a cancel+schedule
  // pair. Returns segments retired.
  // Hot path - marked SOFTTIMER_HOT at the definition.
  size_t OnCumulativeAck(uint64_t conn_id, uint64_t ack_seq);

  // --- introspection (tests / benches) ----------------------------------
  bool IsOpen(uint64_t conn_id) const;
  size_t in_flight(uint64_t conn_id) const;
  // Current effective RTO (backoff applied, clamped).
  uint64_t effective_rto_ticks(uint64_t conn_id) const;
  uint64_t srtt_ticks(uint64_t conn_id) const;
  size_t open_connections() const { return open_; }

  struct Stats {
    uint64_t opens = 0;
    uint64_t closes = 0;
    uint64_t segments_sent = 0;
    uint64_t segments_acked = 0;
    uint64_t timers_scheduled = 0;
    uint64_t timers_cancelled = 0;  // cancelled before firing (the 95% path)
    uint64_t timers_fired = 0;
    // Survivor restarts on partial ACKs (RFC 6298 5.3); a reschedule is
    // neither a schedule nor a cancel, so the conservation equation
    // timers_scheduled == timers_cancelled + timers_fired still holds.
    uint64_t timers_rescheduled = 0;
    uint64_t retransmits = 0;
    uint64_t rtt_samples = 0;
    uint64_t karn_suppressed = 0;  // retired retransmitted segs (no sample)
    uint64_t backoff_capped = 0;   // expiries where the shift hit rto_max
    uint64_t give_ups = 0;         // connections reset
    uint64_t window_full_rejects = 0;
    uint64_t stale_fires = 0;      // fires against a closed generation
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Segment {
    uint64_t seq_end = 0;
    uint64_t sent_tick = 0;
    SoftEventId timer{};        // invalid when no timer armed
    uint8_t retransmitted = 0;  // Karn flag
  };

  struct Conn {
    void* ctx = nullptr;
    uint64_t srtt = 0;    // ticks
    uint64_t rttvar = 0;  // ticks
    uint64_t rto = 0;     // estimator output, pre-backoff
    uint32_t generation = 1;
    uint8_t live = 0;           // in-flight segments
    uint8_t head = 0;           // circular index of the oldest
    uint8_t backoff_shift = 0;  // doubling per no-progress expiry
    uint8_t retries = 0;        // consecutive no-progress expiries
    bool have_srtt = false;
    bool open = false;
    Segment segments[kRtoWindowSegments];
  };

  // Fire-closure payload: [63:32] generation, [31:2] conn index, [1:0]
  // window slot. 30 index bits bound the engine at 2^30 connections.
  static uint64_t PackFire(uint32_t index, uint32_t generation,
                           uint32_t slot) {
    return (static_cast<uint64_t>(generation) << 32) |
           (static_cast<uint64_t>(index) << 2) | slot;
  }

  void OnRtoFire(uint64_t packed, const SoftTimerFacility::FireInfo& info);
  void ArmSegmentTimer(uint32_t index, Conn& conn, uint32_t slot);
  uint64_t EffectiveRto(const Conn& conn) const;
  void TakeRttSample(Conn& conn, uint64_t sample_ticks);
  void AbortConnection(uint32_t index, Conn& conn);
  Conn* Resolve(uint64_t conn_id, uint32_t* index_out = nullptr);
  const Conn* Resolve(uint64_t conn_id) const;

  ShardedSoftTimerRuntime* rt_;
  DegradationPolicy* policy_;
  Config config_;
  RetransmitFn retransmit_fn_ = nullptr;
  void* hook_ctx_ = nullptr;
  AbortFn abort_fn_ = nullptr;
  void* abort_ctx_ = nullptr;
  FireProbeFn fire_probe_fn_ = nullptr;
  void* fire_probe_ctx_ = nullptr;

  std::vector<Conn> conns_;
  std::vector<uint32_t> free_list_;
  size_t open_ = 0;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TCP_RTO_ENGINE_H_
