#include "src/tcp/rto_engine.h"

#include <cassert>

namespace softtimer {

namespace {
constexpr uint32_t kFireSlotMask = kRtoWindowSegments - 1;
static_assert((kRtoWindowSegments & (kRtoWindowSegments - 1)) == 0,
              "window must be a power of two (slot bits in the fire pack)");
}  // namespace

RtoEngine::RtoEngine(ShardedSoftTimerRuntime* runtime,
                     DegradationPolicy* policy, Config config)
    : rt_(runtime), policy_(policy), config_(config) {
  assert(config_.rto_min_ticks > 0);
  assert(config_.rto_min_ticks <= config_.rto_max_ticks);
}

uint64_t RtoEngine::OpenConnection(void* conn_ctx) {
  uint32_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
  } else {
    index = static_cast<uint32_t>(conns_.size());
    conns_.emplace_back();
  }
  Conn& conn = conns_[index];
  conn.ctx = conn_ctx;
  conn.srtt = 0;
  conn.rttvar = 0;
  conn.rto = config_.rto_initial_ticks;
  conn.live = 0;
  conn.head = 0;
  conn.backoff_shift = 0;
  conn.retries = 0;
  conn.have_srtt = false;
  conn.open = true;
  ++open_;
  ++stats_.opens;
  return (static_cast<uint64_t>(conn.generation) << 32) | index;
}

void RtoEngine::CloseConnection(uint64_t conn_id) {
  uint32_t index;
  Conn* conn = Resolve(conn_id, &index);
  if (conn == nullptr) {
    return;
  }
  for (uint32_t i = 0; i < conn->live; ++i) {
    Segment& seg = conn->segments[(conn->head + i) & kFireSlotMask];
    if (seg.timer.valid()) {
      if (rt_->CancelOnShard(config_.shard, seg.timer)) {
        ++stats_.timers_cancelled;
      }
      seg.timer = SoftEventId{};
    }
  }
  conn->live = 0;
  conn->open = false;
  conn->ctx = nullptr;
  // Bump the generation so outstanding ids and packed fire refs go stale;
  // keep it nonzero so ids never collapse to 0.
  if (++conn->generation == 0) {
    conn->generation = 1;
  }
  free_list_.push_back(index);
  --open_;
  ++stats_.closes;
}

uint64_t RtoEngine::EffectiveRto(const Conn& conn) const {
  uint64_t rto = conn.rto;
  // Saturating shift: past 63 the doubling has long hit the cap anyway.
  uint8_t shift = conn.backoff_shift < 63 ? conn.backoff_shift : 63;
  uint64_t backed = rto << shift;
  if ((backed >> shift) != rto || backed > config_.rto_max_ticks) {
    backed = config_.rto_max_ticks;
  }
  return backed < config_.rto_min_ticks ? config_.rto_min_ticks : backed;
}

// SOFTTIMER_HOT
void RtoEngine::ArmSegmentTimer(uint32_t index, Conn& conn, uint32_t slot) {
  Segment& seg = conn.segments[slot];
  RtoEngine* self = this;
  // 16-byte capture: stays inside std::function's inline buffer, so the
  // schedule path allocates nothing.
  uint64_t packed = PackFire(index, conn.generation, slot);
  seg.timer = rt_->ScheduleOnShard(
      config_.shard, EffectiveRto(conn),
      [self, packed](const SoftTimerFacility::FireInfo& info) {
        self->OnRtoFire(packed, info);
      },
      config_.handler_tag);
  ++stats_.timers_scheduled;
}

// SOFTTIMER_HOT
bool RtoEngine::OnSegmentSent(uint64_t conn_id, uint64_t seq_end) {
  uint32_t index;
  Conn* conn = Resolve(conn_id, &index);
  if (conn == nullptr) {
    return false;
  }
  if (conn->live == kRtoWindowSegments) {
    ++stats_.window_full_rejects;
    return false;
  }
  uint32_t slot = (conn->head + conn->live) & kFireSlotMask;
  Segment& seg = conn->segments[slot];
  seg.seq_end = seq_end;
  seg.sent_tick = rt_->clock().NowTicks();
  seg.retransmitted = 0;
  ++conn->live;
  ArmSegmentTimer(index, *conn, slot);
  ++stats_.segments_sent;
  return true;
}

// SOFTTIMER_HOT
size_t RtoEngine::OnCumulativeAck(uint64_t conn_id, uint64_t ack_seq) {
  Conn* conn = Resolve(conn_id);
  if (conn == nullptr) {
    return 0;
  }
  size_t retired = 0;
  // Karn: sample the newest retired segment that was sent exactly once.
  uint64_t sample_sent_tick = 0;
  bool have_sample = false;
  while (conn->live > 0) {
    Segment& seg = conn->segments[conn->head];
    if (seg.seq_end > ack_seq) {
      break;
    }
    if (seg.timer.valid()) {
      if (rt_->CancelOnShard(config_.shard, seg.timer)) {
        ++stats_.timers_cancelled;
      }
      seg.timer = SoftEventId{};
    }
    if (seg.retransmitted) {
      ++stats_.karn_suppressed;
    } else {
      sample_sent_tick = seg.sent_tick;
      have_sample = true;
    }
    conn->head = (conn->head + 1) & kFireSlotMask;
    --conn->live;
    ++retired;
    ++stats_.segments_acked;
  }
  if (retired > 0) {
    // Forward progress: the path is alive, collapse the backoff episode.
    conn->backoff_shift = 0;
    conn->retries = 0;
    if (have_sample) {
      uint64_t now = rt_->clock().NowTicks();
      TakeRttSample(*conn, now - sample_sent_tick);
    }
    // RFC 6298 step 5.3: new data was acknowledged with segments still in
    // flight, so restart the retransmission timer from now at the refreshed
    // (backoff-collapsed, re-estimated) RTO. One in-place reschedule per
    // survivor - the native update path, not a cancel+schedule pair.
    if (conn->live > 0) {
      uint64_t rto = EffectiveRto(*conn);
      for (uint32_t i = 0; i < conn->live; ++i) {
        Segment& seg = conn->segments[(conn->head + i) & kFireSlotMask];
        if (!seg.timer.valid()) {
          continue;
        }
        SoftEventId moved =
            rt_->RescheduleOnShard(config_.shard, seg.timer, rto);
        if (moved.valid()) {
          seg.timer = moved;
          ++stats_.timers_rescheduled;
        }
      }
    }
  }
  return retired;
}

void RtoEngine::TakeRttSample(Conn& conn, uint64_t sample_ticks) {
  if (!conn.have_srtt) {
    conn.srtt = sample_ticks;
    conn.rttvar = sample_ticks / 2;
    conn.have_srtt = true;
  } else {
    uint64_t diff = conn.srtt > sample_ticks ? conn.srtt - sample_ticks
                                             : sample_ticks - conn.srtt;
    conn.rttvar = (3 * conn.rttvar + diff) / 4;
    conn.srtt = (7 * conn.srtt + sample_ticks) / 8;
  }
  uint64_t var_term = 4 * conn.rttvar;
  if (var_term < 1) {
    var_term = 1;
  }
  uint64_t rto = conn.srtt + var_term;
  if (rto < config_.rto_min_ticks) {
    rto = config_.rto_min_ticks;
  }
  if (rto > config_.rto_max_ticks) {
    rto = config_.rto_max_ticks;
  }
  conn.rto = rto;
  ++stats_.rtt_samples;
}

// SOFTTIMER_HOT
void RtoEngine::OnRtoFire(uint64_t packed,
                          const SoftTimerFacility::FireInfo& info) {
  uint32_t slot = static_cast<uint32_t>(packed) & kFireSlotMask;
  uint32_t index = (static_cast<uint32_t>(packed)) >> 2;
  uint32_t generation = static_cast<uint32_t>(packed >> 32);
  if (index >= conns_.size()) {
    ++stats_.stale_fires;
    return;
  }
  Conn& conn = conns_[index];
  if (!conn.open || conn.generation != generation) {
    ++stats_.stale_fires;
    return;
  }
  if (fire_probe_fn_ != nullptr) {
    fire_probe_fn_(fire_probe_ctx_, info);
  }
  Segment& seg = conn.segments[slot];
  // Same-thread discipline means a fire always refers to the currently
  // armed timer for this slot (a cancelled timer never dispatches).
  seg.timer = SoftEventId{};
  ++stats_.timers_fired;

  // Backoff first, so the retransmission is re-armed at the doubled RTO.
  uint64_t before = EffectiveRto(conn);
  if (conn.backoff_shift < 63) {
    ++conn.backoff_shift;
  }
  if (EffectiveRto(conn) == before && before == config_.rto_max_ticks) {
    ++stats_.backoff_capped;
  }
  ++conn.retries;
  if (conn.retries > config_.max_retransmits) {
    AbortConnection(index, conn);
    return;
  }

  seg.retransmitted = 1;  // Karn: its ACK is ambiguous from here on
  seg.sent_tick = rt_->clock().NowTicks();
  ++stats_.retransmits;
  if (retransmit_fn_ != nullptr) {
    retransmit_fn_(hook_ctx_, conn.ctx, seg.seq_end, conn.retries);
  }
  ArmSegmentTimer(index, conn, slot);
}

// SOFTTIMER_COLD: transport give-up - reached only after the full RFC 6298
// backoff ladder is exhausted (max_retries consecutive losses on one
// segment), which DegradationPolicy counts as a connection reset; the
// steady-state fire path rearms and returns long before this.
void RtoEngine::AbortConnection(uint32_t index, Conn& conn) {
  void* ctx = conn.ctx;
  ++stats_.give_ups;
  if (policy_ != nullptr) {
    policy_->NoteConnectionReset();
  }
  CloseConnection((static_cast<uint64_t>(conn.generation) << 32) | index);
  if (abort_fn_ != nullptr) {
    abort_fn_(abort_ctx_, ctx);
  }
}

RtoEngine::Conn* RtoEngine::Resolve(uint64_t conn_id, uint32_t* index_out) {
  uint32_t index = static_cast<uint32_t>(conn_id);
  uint32_t generation = static_cast<uint32_t>(conn_id >> 32);
  if (index >= conns_.size()) {
    return nullptr;
  }
  Conn& conn = conns_[index];
  if (!conn.open || conn.generation != generation) {
    return nullptr;
  }
  if (index_out != nullptr) {
    *index_out = index;
  }
  return &conn;
}

const RtoEngine::Conn* RtoEngine::Resolve(uint64_t conn_id) const {
  return const_cast<RtoEngine*>(this)->Resolve(conn_id);
}

bool RtoEngine::IsOpen(uint64_t conn_id) const {
  return Resolve(conn_id) != nullptr;
}

size_t RtoEngine::in_flight(uint64_t conn_id) const {
  const Conn* conn = Resolve(conn_id);
  return conn != nullptr ? conn->live : 0;
}

uint64_t RtoEngine::effective_rto_ticks(uint64_t conn_id) const {
  const Conn* conn = Resolve(conn_id);
  return conn != nullptr ? EffectiveRto(*conn) : 0;
}

uint64_t RtoEngine::srtt_ticks(uint64_t conn_id) const {
  const Conn* conn = Resolve(conn_id);
  return conn != nullptr ? conn->srtt : 0;
}

}  // namespace softtimer
