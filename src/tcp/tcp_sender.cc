#include "src/tcp/tcp_sender.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace softtimer {

namespace {

AdaptivePacer::Config PacerConfig(const TcpSender::Config& c) {
  AdaptivePacer::Config pc;
  pc.target_interval_ticks = c.pace_target_interval_ticks;
  pc.min_burst_interval_ticks = c.pace_min_burst_interval_ticks;
  pc.max_coalesced_burst_packets = c.pace_max_coalesced_burst;
  return pc;
}

}  // namespace

TcpSender::TcpSender(Kernel* kernel, Config config)
    : kernel_(kernel), config_(config), pacer_(PacerConfig(config)) {
  assert(kernel_ != nullptr);
  assert(config_.mss > 0);
}

void TcpSender::StartTransfer(uint64_t bytes, std::function<void()> on_complete) {
  assert(!active_);
  transfer_bytes_ = bytes;
  on_complete_ = std::move(on_complete);
  active_ = true;
  complete_ = false;
  snd_una_ = 0;
  snd_next_ = 0;
  snd_max_ = 0;
  dupacks_ = 0;
  in_recovery_ = false;
  cwnd_ = static_cast<uint64_t>(config_.initial_cwnd_segments) * config_.mss;
  ssthresh_ = config_.ssthresh_bytes;
  rto_current_ = config_.rto_initial;

  if (config_.mode == Mode::kRateBased) {
    pacer_.StartTrain(kernel_->soft_timers().MeasureTime());
    OnPaceEvent();  // first segment leaves immediately
  } else if (config_.mode == Mode::kWheelPaced) {
    // The pacing wheel clocks transmissions: activate the flow and wait for
    // the wheel's first EmitPaced grant.
    if (wheel_resume_) {
      wheel_resume_();
    }
  } else {
    TrySendWindow(config_.max_burst_segments);
  }
  ArmRto();
}

uint32_t TcpSender::EmitPaced(uint32_t budget) {
  if (config_.mode != Mode::kWheelPaced || !active_ || complete_) {
    return 0;
  }
  burst_scratch_.clear();
  SimTime now = kernel_->sim()->now();
  while (burst_scratch_.size() < budget && snd_next_ < transfer_bytes_) {
    uint32_t payload = static_cast<uint32_t>(
        std::min<uint64_t>(config_.mss, transfer_bytes_ - snd_next_));
    Packet p;
    p.flow_id = config_.flow_id;
    p.kind = Packet::Kind::kData;
    p.seq = snd_next_;
    p.payload = payload;
    p.fin = (snd_next_ + payload >= transfer_bytes_);
    p.size_bytes = payload + kTcpIpHeaderBytes;
    p.sent_at = now;
    burst_scratch_.push_back(p);
    if (snd_next_ < snd_max_) {
      // Go-back-N resend: Karn's rule invalidates any outstanding probe.
      ++stats_.retransmits;
      rtt_probe_active_ = false;
    } else {
      MaybeStartRttProbe(snd_next_ + payload);
      snd_max_ = snd_next_ + payload;
    }
    snd_next_ += payload;
  }
  uint32_t n = static_cast<uint32_t>(burst_scratch_.size());
  if (n == 0) {
    return 0;
  }
  stats_.segments_sent += n;
  // The whole burst passes through ONE ip-output trigger state (the wheel's
  // batched dispatch collapses per-packet check overhead), while the
  // driver/protocol output cost is still charged per packet.
  kernel_->Trigger(TriggerSource::kIpOutput);
  kernel_->cpu(0).Steal(kernel_->profile().Work(kernel_->profile().tx_packet_service) *
                        static_cast<int64_t>(n));
  if (burst_sender_) {
    burst_sender_(burst_scratch_.data(), n);
  } else if (packet_sender_) {
    for (const Packet& p : burst_scratch_) {
      packet_sender_(p);
    }
  }
  return n;
}

void TcpSender::SendSegmentAt(uint64_t seq, bool retransmit) {
  uint32_t payload =
      static_cast<uint32_t>(std::min<uint64_t>(config_.mss, transfer_bytes_ - seq));
  Packet p;
  p.flow_id = config_.flow_id;
  p.kind = Packet::Kind::kData;
  p.seq = seq;
  p.payload = payload;
  p.fin = (seq + payload >= transfer_bytes_);
  p.size_bytes = payload + kTcpIpHeaderBytes;
  p.sent_at = kernel_->sim()->now();

  ++stats_.segments_sent;
  if (retransmit) {
    ++stats_.retransmits;
    // Karn's rule: an ACK covering a retransmitted range is ambiguous.
    rtt_probe_active_ = false;
  } else {
    MaybeStartRttProbe(seq + payload);
  }
  if (seq + payload > snd_max_) {
    snd_max_ = seq + payload;
  }
  // The transmission passes through the kernel's IP output path: an
  // ip-output trigger state plus the driver/protocol output cost.
  kernel_->Trigger(TriggerSource::kIpOutput);
  kernel_->cpu(0).Steal(kernel_->profile().Work(kernel_->profile().tx_packet_service));
  if (packet_sender_) {
    packet_sender_(p);
  }
}

void TcpSender::TrySendWindow(uint32_t burst_budget) {
  uint64_t wnd = std::min(cwnd_, config_.rwnd_bytes);
  uint32_t sent = 0;
  while (active_ && snd_next_ < transfer_bytes_) {
    uint64_t payload = std::min<uint64_t>(config_.mss, transfer_bytes_ - snd_next_);
    if (snd_next_ - snd_una_ + payload > wnd) {
      break;
    }
    SendSegmentAt(snd_next_, /*retransmit=*/false);
    snd_next_ += payload;
    ++sent;
    if (burst_budget != 0 && sent >= burst_budget) {
      break;
    }
  }
}

void TcpSender::OnPaceEvent() {
  pace_event_ = SoftEventId{};
  if (!active_ || complete_) {
    return;
  }
  if (snd_next_ >= transfer_bytes_) {
    return;  // everything sent; waiting for ACKs
  }
  // A stale wakeup (the soft-timer stream stalled) may carry a bounded
  // catch-up burst; the last segment of the burst goes through the normal
  // send-and-reschedule path.
  uint64_t budget = pacer_.CoalescedBurstBudget(kernel_->soft_timers().MeasureTime());
  while (budget > 1 && snd_next_ < transfer_bytes_) {
    uint64_t extra = std::min<uint64_t>(config_.mss, transfer_bytes_ - snd_next_);
    SendSegmentAt(snd_next_, /*retransmit=*/false);
    snd_next_ += extra;
    pacer_.OnPacketSent(kernel_->soft_timers().MeasureTime());
    --budget;
  }
  if (snd_next_ >= transfer_bytes_) {
    return;
  }
  uint64_t payload = std::min<uint64_t>(config_.mss, transfer_bytes_ - snd_next_);
  SendSegmentAt(snd_next_, /*retransmit=*/false);
  snd_next_ += payload;
  if (snd_next_ < transfer_bytes_) {
    SchedulePacedSend();
  }
}

void TcpSender::SchedulePacedSend() {
  uint64_t now_ticks = kernel_->soft_timers().MeasureTime();
  uint64_t delta = pacer_.OnPacketSent(now_ticks);
  pace_event_ = kernel_->soft_timers().ScheduleSoftEvent(
      delta, [this](const SoftTimerFacility::FireInfo&) { OnPaceEvent(); });
}

void TcpSender::OnAck(const Packet& p) {
  ++stats_.acks_received;
  if (!active_) {
    return;
  }
  uint64_t ack = p.ack_seq;
  if (ack > snd_una_) {
    if (config_.adaptive_rto && rtt_probe_active_ && ack >= rtt_probe_end_seq_) {
      rtt_probe_active_ = false;
      OnRttSample(kernel_->sim()->now() - rtt_probe_sent_at_);
    }
    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;  // full ACK: recovery episode over
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ACK: the next hole is lost too; retransmit it
        // immediately instead of waiting for the RTO.
        snd_una_ = ack;
        dupacks_ = 0;
        SendSegmentAt(snd_una_, /*retransmit=*/true);
        ArmRto();
        return;
      }
    }
    snd_una_ = ack;
    dupacks_ = 0;
    if (config_.mode == Mode::kSelfClocked && !in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += config_.mss;  // slow start: +1 MSS per ACK
      } else {
        cwnd_ += std::max<uint64_t>(
            static_cast<uint64_t>(config_.mss) * config_.mss / cwnd_, 1);
      }
    }
    ArmRto();
    CompleteIfDone();
    if (!complete_ && config_.mode == Mode::kSelfClocked) {
      TrySendWindow(config_.max_burst_segments);
    }
    return;
  }
  if (ack == snd_una_ && snd_next_ > snd_una_) {
    ++dupacks_;
    if (config_.mode != Mode::kSelfClocked) {
      return;  // rate-based reliability rests on the RTO backstop
    }
    if (!in_recovery_ && dupacks_ >= config_.dupack_threshold) {
      // Fast retransmit (Reno, simplified: no window inflation).
      in_recovery_ = true;
      recover_ = snd_next_;
      uint64_t flight = snd_next_ - snd_una_;
      ssthresh_ = std::max<uint64_t>(flight / 2, 2ULL * config_.mss);
      cwnd_ = ssthresh_;
      ++stats_.fast_retransmits;
      SendSegmentAt(snd_una_, /*retransmit=*/true);
      ArmRto();
    } else if (in_recovery_) {
      // Each further dup ACK signals a departure; keep the pipe from
      // draining completely.
      cwnd_ += config_.mss;
      TrySendWindow(1);
    }
  }
}

void TcpSender::MaybeStartRttProbe(uint64_t end_seq) {
  if (!config_.adaptive_rto || rtt_probe_active_) {
    return;
  }
  rtt_probe_active_ = true;
  rtt_probe_end_seq_ = end_seq;
  rtt_probe_sent_at_ = kernel_->sim()->now();
}

void TcpSender::OnRttSample(SimDuration sample) {
  if (!have_srtt_) {
    srtt_ = sample;
    rttvar_ = sample / int64_t{2};
    have_srtt_ = true;
  } else {
    SimDuration err = sample - srtt_;
    if (err < SimDuration::Zero()) {
      err = -err;
    }
    srtt_ = srtt_ + (sample - srtt_) / int64_t{8};
    rttvar_ = rttvar_ + (err - rttvar_) / int64_t{4};
  }
  SimDuration rto = srtt_ + rttvar_ * int64_t{4};
  rto_current_ = std::clamp(rto, config_.rto_min, config_.rto_max);
}

void TcpSender::ArmRto() {
  Simulator* sim = kernel_->sim();
  if (rto_event_.valid()) {
    sim->Cancel(rto_event_);
  }
  rto_event_ = sim->ScheduleAfter(rto_current_, [this] { OnRtoFire(); });
}

void TcpSender::OnRtoFire() {
  rto_event_ = EventHandle{};
  if (!active_ || complete_ || snd_una_ >= transfer_bytes_) {
    return;
  }
  ++stats_.timeouts;
  uint64_t flight = snd_next_ - snd_una_;
  ssthresh_ = std::max<uint64_t>(flight / 2, 2ULL * config_.mss);
  cwnd_ = config_.mss;
  dupacks_ = 0;
  in_recovery_ = false;
  snd_next_ = snd_una_;  // go-back-N from the hole
  rto_current_ = std::min(rto_current_ * int64_t{2}, config_.rto_max);
  if (config_.mode == Mode::kRateBased) {
    if (!pace_event_.valid()) {
      pacer_.StartTrain(kernel_->soft_timers().MeasureTime());
      OnPaceEvent();
    }
  } else if (config_.mode == Mode::kWheelPaced) {
    // Go-back-N reopened unsent data; re-activate on the wheel (restarting
    // the flow's train — the retransmission burst is paced too).
    if (wheel_resume_) {
      wheel_resume_();
    }
  } else {
    TrySendWindow(config_.max_burst_segments);
  }
  ArmRto();
}

void TcpSender::CompleteIfDone() {
  if (complete_ || snd_una_ < transfer_bytes_) {
    return;
  }
  complete_ = true;
  active_ = false;
  Simulator* sim = kernel_->sim();
  if (rto_event_.valid()) {
    sim->Cancel(rto_event_);
    rto_event_ = EventHandle{};
  }
  if (pace_event_.valid()) {
    kernel_->soft_timers().CancelSoftEvent(pace_event_);
    pace_event_ = SoftEventId{};
  }
  if (config_.mode == Mode::kWheelPaced && wheel_pause_) {
    wheel_pause_();
  }
  if (on_complete_) {
    auto cb = std::move(on_complete_);
    on_complete_ = nullptr;
    cb();
  }
}

}  // namespace softtimer
