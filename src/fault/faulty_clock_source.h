// A ClockSource wrapper that models cycle-counter anomalies.
//
// The paper's facility reads "the clock (usually a CPU register)". Real
// cycle counters misbehave: SMM firmware can stall them, power management
// can stop them, and resynchronization can make them leap. FaultyClockSource
// reproduces the two recoverable shapes while preserving the ClockSource
// monotonicity contract:
//
//   Stall - for `duration_ticks` of true time starting at `start_tick` the
//           reported clock is frozen; afterwards it runs at normal rate but
//           permanently lags by the stalled amount.
//   Jump  - at `at_tick` the reported clock leaps forward by `jump_ticks`.
//
// The transform is a pure function of the base clock, so a deterministic
// simulation stays deterministic. Stall windows must not overlap each other
// (overlap would double-count lost ticks and could break monotonicity).

#ifndef SOFTTIMER_SRC_FAULT_FAULTY_CLOCK_SOURCE_H_
#define SOFTTIMER_SRC_FAULT_FAULTY_CLOCK_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/core/clock_source.h"

namespace softtimer::fault {

class FaultyClockSource : public ClockSource {
 public:
  struct Stall {
    uint64_t start_tick = 0;
    uint64_t duration_ticks = 0;
  };
  struct Jump {
    uint64_t at_tick = 0;
    uint64_t jump_ticks = 0;  // forward only: monotonicity is preserved
  };

  FaultyClockSource(const ClockSource* base, std::vector<Stall> stalls,
                    std::vector<Jump> jumps)
      : base_(base), stalls_(std::move(stalls)), jumps_(std::move(jumps)) {}

  uint64_t NowTicks() const override {
    uint64_t t = base_->NowTicks();
    uint64_t lost = 0;
    for (const Stall& s : stalls_) {
      if (t > s.start_tick) {
        lost += std::min(t - s.start_tick, s.duration_ticks);
      }
    }
    uint64_t gained = 0;
    for (const Jump& j : jumps_) {
      if (t >= j.at_tick) {
        gained += j.jump_ticks;
      }
    }
    return t - lost + gained;
  }

  uint64_t ResolutionHz() const override { return base_->ResolutionHz(); }

 private:
  const ClockSource* base_;
  std::vector<Stall> stalls_;
  std::vector<Jump> jumps_;
};

}  // namespace softtimer::fault

#endif  // SOFTTIMER_SRC_FAULT_FAULTY_CLOCK_SOURCE_H_
