// FaultInjector - interprets a FaultPlan deterministically.
//
// One injector owns one seeded Rng and answers the per-event questions the
// instrumented components ask ("is this trigger swallowed?", "does this
// backup tick survive?", ...). Windows are evaluated against the *true*
// measurement clock handed to the constructor, so injected clock anomalies
// do not shift the other faults' windows.
//
// Typical wiring:
//
//   SimClockSource true_clock(&sim, measure_hz);
//   fault::FaultInjector inj(&true_clock, plan, seed);
//   Kernel::Config kc;
//   kc.measure_clock_override = inj.faulty_clock();  // if the plan has
//   Kernel kernel(&sim, kc);                         // clock faults
//   inj.InstallOn(&kernel);
//   inj.InstallOn(&link);
//
// Every probabilistic decision draws from the injector's Rng in simulation
// event order, so a fixed (plan, seed) perturbs a deterministic simulation
// identically across runs - which is what lets tests assert exact Stats.

#ifndef SOFTTIMER_SRC_FAULT_FAULT_INJECTOR_H_
#define SOFTTIMER_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/core/clock_source.h"
#include "src/core/trigger.h"
#include "src/fault/fault_plan.h"
#include "src/fault/faulty_clock_source.h"
#include "src/machine/kernel.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace softtimer::fault {

class FaultInjector {
 public:
  // `true_clock` must outlive the injector.
  FaultInjector(const ClockSource* true_clock, FaultPlan plan, uint64_t seed);

  // --- per-event queries (also usable directly, without InstallOn) --------
  bool SuppressTrigger(TriggerSource source);
  bool DropBackupInterrupt();
  uint64_t BackupJitterTicks();
  SimDuration HandlerOverrunExtra(uint32_t handler_tag);
  // Evaluates burst_loss (deterministic), then packet_loss (kind-aware
  // probabilistic), then the kind-blind link_faults - first verdict wins.
  Link::FaultAction LinkAction(const Packet& p);

  // Convenience queries for harnesses that drive loss without a Link in the
  // path (e.g. the RTO bench, which models the wire as pure timer traffic).
  // Equivalent to LinkAction on a minimal packet of that kind.
  bool DropDataSegment(uint64_t flow_id = 0);
  bool DropAck(uint64_t flow_id = 0);

  // The measurement clock as perturbed by the plan's stalls/jumps. Pass as
  // Kernel::Config::measure_clock_override (valid for the injector's
  // lifetime; identical to the true clock when the plan has no clock faults).
  const FaultyClockSource* faulty_clock() const { return &faulty_clock_; }

  // Installs the kernel-side fault hooks on `kernel`.
  void InstallOn(Kernel* kernel);
  // Installs the packet-fault hook on `link`.
  void InstallOn(Link* link);

  struct Stats {
    uint64_t triggers_suppressed = 0;
    uint64_t backups_dropped = 0;
    uint64_t backups_jittered = 0;
    uint64_t overruns_injected = 0;
    uint64_t packets_dropped = 0;
    uint64_t packets_duplicated = 0;
    uint64_t data_dropped = 0;   // PacketLoss verdicts on kData
    uint64_t acks_dropped = 0;   // PacketLoss verdicts on kAck
    uint64_t burst_dropped = 0;  // BurstLoss verdicts (any kind)
  };
  const Stats& stats() const { return stats_; }

 private:
  uint64_t TrueNow() const { return true_clock_->NowTicks(); }

  const ClockSource* true_clock_;
  FaultPlan plan_;
  Rng rng_;
  FaultyClockSource faulty_clock_;
  Stats stats_;
  // Per-BurstLoss packets still to drop (parallel to plan_.burst_loss).
  std::vector<uint32_t> burst_remaining_;
};

}  // namespace softtimer::fault

#endif  // SOFTTIMER_SRC_FAULT_FAULT_INJECTOR_H_
