// Declarative fault plans for the soft-timer fault-injection harness.
//
// A FaultPlan is pure data: a set of windows on the measurement-clock tick
// timeline (true time, before any injected clock anomaly) plus the fault
// each window carries. The plan is interpreted by a FaultInjector, which
// draws all probabilistic decisions from one seeded Rng so that a given
// (plan, seed) pair perturbs a simulation identically on every run.
//
// Faults modelled, mapped to the failure modes of the paper's facility:
//
//   trigger_droughts  - the kernel stops passing through trigger states
//                       (e.g. a long kernel section with no checks), the
//                       paper's worst case for soft-timer latency.
//   backup_loss       - the backup periodic interrupt is masked or lost, so
//                       the T + X + 1 backstop itself degrades.
//   backup_jitter     - the backup tick arrives late by a bounded amount.
//   clock_stalls /    - the measurement clock (a cycle counter) freezes or
//   clock_jumps         leaps forward; see FaultyClockSource.
//   handler_overruns  - a handler tag runs far past its expected cost,
//                       stalling the kernel (long non-preemptible section).
//   link_faults       - burst loss / duplication on a network link.

#ifndef SOFTTIMER_SRC_FAULT_FAULT_PLAN_H_
#define SOFTTIMER_SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/fault/faulty_clock_source.h"
#include "src/sim/time.h"

namespace softtimer::fault {

// Half-open tick interval [start_tick, start_tick + duration_ticks).
struct FaultWindow {
  uint64_t start_tick = 0;
  uint64_t duration_ticks = 0;

  bool Contains(uint64_t tick) const {
    return tick >= start_tick && tick - start_tick < duration_ticks;
  }
};

struct FaultPlan {
  // Non-backup trigger states inside these windows are swallowed.
  std::vector<FaultWindow> trigger_droughts;

  // Backup ticks inside the window are dropped with the given probability.
  struct BackupLoss {
    FaultWindow window;
    double drop_probability = 1.0;
  };
  std::vector<BackupLoss> backup_loss;

  // Backup ticks inside the window are delayed by U[0, max_jitter_ticks].
  struct BackupJitter {
    FaultWindow window;
    uint64_t max_jitter_ticks = 0;
  };
  std::vector<BackupJitter> backup_jitter;

  // Measurement-clock anomalies (windows in true tick time; see
  // FaultyClockSource for the monotone transform they produce).
  std::vector<FaultyClockSource::Stall> clock_stalls;
  std::vector<FaultyClockSource::Jump> clock_jumps;

  // Dispatches of `handler_tag` inside the window run `extra_runtime` long.
  struct HandlerOverrun {
    FaultWindow window;
    uint32_t handler_tag = 0;
    SimDuration extra_runtime;
  };
  std::vector<HandlerOverrun> handler_overruns;

  // Packets entering an instrumented link inside the window are dropped /
  // duplicated with the given probabilities (drop is tried first).
  struct LinkFault {
    FaultWindow window;
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
  };
  std::vector<LinkFault> link_faults;

  // Kind-aware probabilistic loss: data segments and cumulative ACKs are
  // dropped with independent probabilities inside the window. This is the
  // RTO chaos knob - data loss makes retransmission timers actually fire;
  // ACK loss makes cancels go missing so backoff and Karn's rule engage.
  // Packet kinds other than kData/kAck pass through untouched (they remain
  // subject to link_faults).
  struct PacketLoss {
    FaultWindow window;
    double data_drop_probability = 0.0;
    double ack_drop_probability = 0.0;
  };
  std::vector<PacketLoss> packet_loss;

  // Deterministic burst loss: once the window opens, the first `count`
  // packets matching the kind filter are dropped - exactly, independent of
  // the seed. Models a routing flap / queue tail-drop episode and gives
  // tests a way to force a precise retransmission schedule.
  struct BurstLoss {
    FaultWindow window;
    uint32_t count = 0;
    bool match_data = true;
    bool match_acks = false;
  };
  std::vector<BurstLoss> burst_loss;
};

}  // namespace softtimer::fault

#endif  // SOFTTIMER_SRC_FAULT_FAULT_PLAN_H_
