#include "src/fault/fault_injector.h"

#include <utility>

namespace softtimer::fault {

FaultInjector::FaultInjector(const ClockSource* true_clock, FaultPlan plan,
                             uint64_t seed)
    : true_clock_(true_clock),
      plan_(std::move(plan)),
      rng_(seed),
      faulty_clock_(true_clock, plan_.clock_stalls, plan_.clock_jumps) {
  burst_remaining_.reserve(plan_.burst_loss.size());
  for (const FaultPlan::BurstLoss& b : plan_.burst_loss) {
    burst_remaining_.push_back(b.count);
  }
}

bool FaultInjector::SuppressTrigger(TriggerSource source) {
  (void)source;
  uint64_t now = TrueNow();
  for (const FaultWindow& w : plan_.trigger_droughts) {
    if (w.Contains(now)) {
      ++stats_.triggers_suppressed;
      return true;
    }
  }
  return false;
}

bool FaultInjector::DropBackupInterrupt() {
  uint64_t now = TrueNow();
  for (const FaultPlan::BackupLoss& f : plan_.backup_loss) {
    if (f.window.Contains(now) && rng_.Bernoulli(f.drop_probability)) {
      ++stats_.backups_dropped;
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::BackupJitterTicks() {
  uint64_t now = TrueNow();
  for (const FaultPlan::BackupJitter& f : plan_.backup_jitter) {
    if (f.window.Contains(now) && f.max_jitter_ticks > 0) {
      uint64_t j = rng_.UniformU64(f.max_jitter_ticks + 1);
      if (j > 0) {
        ++stats_.backups_jittered;
      }
      return j;
    }
  }
  return 0;
}

SimDuration FaultInjector::HandlerOverrunExtra(uint32_t handler_tag) {
  uint64_t now = TrueNow();
  for (const FaultPlan::HandlerOverrun& f : plan_.handler_overruns) {
    if (f.handler_tag == handler_tag && f.window.Contains(now)) {
      ++stats_.overruns_injected;
      return f.extra_runtime;
    }
  }
  return SimDuration::Zero();
}

Link::FaultAction FaultInjector::LinkAction(const Packet& p) {
  uint64_t now = TrueNow();
  // Deterministic bursts first: they model a discrete outage episode and
  // must not be diluted by a probabilistic verdict consuming the packet.
  for (size_t i = 0; i < plan_.burst_loss.size(); ++i) {
    const FaultPlan::BurstLoss& b = plan_.burst_loss[i];
    bool matches = (b.match_data && p.kind == Packet::Kind::kData) ||
                   (b.match_acks && p.kind == Packet::Kind::kAck);
    if (matches && b.window.Contains(now) && burst_remaining_[i] > 0) {
      --burst_remaining_[i];
      ++stats_.burst_dropped;
      return Link::FaultAction::kDrop;
    }
  }
  for (const FaultPlan::PacketLoss& f : plan_.packet_loss) {
    if (!f.window.Contains(now)) {
      continue;
    }
    if (p.kind == Packet::Kind::kData && f.data_drop_probability > 0 &&
        rng_.Bernoulli(f.data_drop_probability)) {
      ++stats_.data_dropped;
      return Link::FaultAction::kDrop;
    }
    if (p.kind == Packet::Kind::kAck && f.ack_drop_probability > 0 &&
        rng_.Bernoulli(f.ack_drop_probability)) {
      ++stats_.acks_dropped;
      return Link::FaultAction::kDrop;
    }
  }
  for (const FaultPlan::LinkFault& f : plan_.link_faults) {
    if (!f.window.Contains(now)) {
      continue;
    }
    if (f.drop_probability > 0 && rng_.Bernoulli(f.drop_probability)) {
      ++stats_.packets_dropped;
      return Link::FaultAction::kDrop;
    }
    if (f.duplicate_probability > 0 && rng_.Bernoulli(f.duplicate_probability)) {
      ++stats_.packets_duplicated;
      return Link::FaultAction::kDuplicate;
    }
  }
  return Link::FaultAction::kNone;
}

bool FaultInjector::DropDataSegment(uint64_t flow_id) {
  Packet p;
  p.kind = Packet::Kind::kData;
  p.flow_id = flow_id;
  return LinkAction(p) == Link::FaultAction::kDrop;
}

bool FaultInjector::DropAck(uint64_t flow_id) {
  Packet p;
  p.kind = Packet::Kind::kAck;
  p.flow_id = flow_id;
  return LinkAction(p) == Link::FaultAction::kDrop;
}

void FaultInjector::InstallOn(Kernel* kernel) {
  Kernel::FaultHooks hooks;
  if (!plan_.trigger_droughts.empty()) {
    hooks.suppress_trigger = [this](TriggerSource s) { return SuppressTrigger(s); };
  }
  if (!plan_.backup_loss.empty()) {
    hooks.drop_backup = [this] { return DropBackupInterrupt(); };
  }
  if (!plan_.backup_jitter.empty()) {
    hooks.backup_jitter_ticks = [this] { return BackupJitterTicks(); };
  }
  if (!plan_.handler_overruns.empty()) {
    hooks.handler_overrun = [this](uint32_t tag) { return HandlerOverrunExtra(tag); };
  }
  kernel->set_fault_hooks(std::move(hooks));
}

void FaultInjector::InstallOn(Link* link) {
  link->set_fault_hook([this](const Packet& p) { return LinkAction(p); });
}

}  // namespace softtimer::fault
