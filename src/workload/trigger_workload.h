// The measured workloads of Section 5.3 (Figure 4 / Table 1), reproduced as
// trigger-state generators:
//
//   ST-Apache          - the Apache web-server testbed (mechanistic, via
//                        httpsim).
//   ST-Apache-compute  - same, plus a compute-bound background process that
//                        soaks up idle time in large scheduler quanta.
//   ST-Flash           - the event-driven Flash server testbed.
//   ST-real-audio      - a CPU-saturating media player (mechanistic, via
//                        appsim::MediaPlayerModel): a decode pipeline of
//                        user-mode compute bracketed by frequent syscalls,
//                        plus stream packets and sound-card interrupts.
//   ST-nfs             - a disk-bound NFS server, ~90% idle (mechanistic,
//                        via nfssim + the storage disk model): the idle
//                        loop dominates the trigger stream.
//   ST-kernel-build    - a make-driven compiler (mechanistic, via
//                        appsim::CompileJobModel): exec/IO syscall storms
//                        separated by heavy-tailed compute runs, with disk
//                        readahead and batched write-back.
//
// Every workload is a mechanistic simulation; the calibrated stochastic
// generator (StochasticKernelLoad) remains available as a library for
// synthetic trigger streams.

#ifndef SOFTTIMER_SRC_WORKLOAD_TRIGGER_WORKLOAD_H_
#define SOFTTIMER_SRC_WORKLOAD_TRIGGER_WORKLOAD_H_

#include <memory>
#include <string>

#include "src/machine/kernel.h"
#include "src/machine/machine_profile.h"
#include "src/sim/simulator.h"

namespace softtimer {

enum class WorkloadKind {
  kApache,
  kApacheCompute,
  kFlash,
  kRealAudio,
  kNfs,
  kKernelBuild,
};

const char* WorkloadKindName(WorkloadKind kind);

class TriggerWorkload {
 public:
  virtual ~TriggerWorkload() = default;

  virtual Kernel& kernel() = 0;
  virtual Simulator& sim() = 0;

  // Kicks off load generation. Attach a trigger observer to kernel() before
  // or after; samples flow once the simulation runs.
  virtual void Start() = 0;

  virtual std::string name() const = 0;
};

// Builds a ready-to-run workload on a machine of the given profile.
std::unique_ptr<TriggerWorkload> MakeTriggerWorkload(WorkloadKind kind,
                                                     const MachineProfile& profile,
                                                     uint64_t seed);

// Fitted-distribution alternative for the non-web workloads (kRealAudio,
// kNfs, kKernelBuild): a StochasticKernelLoad with mixture parameters
// calibrated to Table 1, instead of the mechanistic substrate. Useful for
// ablating how much the mechanistic structure matters, and as a template
// for synthesizing new trigger streams.
std::unique_ptr<TriggerWorkload> MakeStochasticTriggerWorkload(WorkloadKind kind,
                                                               const MachineProfile& profile,
                                                               uint64_t seed);

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_WORKLOAD_TRIGGER_WORKLOAD_H_
