// Stochastic kernel-entry generator for the non-web workloads of Table 1.
//
// A single simulated "process" executes a serial stream of operations drawn
// from a weighted mixture: kernel entries (syscalls, traps, network output)
// and pure user-mode compute stretches (which produce no trigger and widen
// the interval between the surrounding ones). An optional duty cycle turns
// the process into bursts separated by idle time - on an idle CPU the
// kernel's idle loop takes over trigger generation (the ST-nfs regime) - and
// an optional Poisson device-interrupt stream models disk/network
// interrupts.

#ifndef SOFTTIMER_SRC_WORKLOAD_STOCHASTIC_LOAD_H_
#define SOFTTIMER_SRC_WORKLOAD_STOCHASTIC_LOAD_H_

#include <vector>

#include "src/machine/kernel.h"
#include "src/sim/random.h"

namespace softtimer {

class StochasticKernelLoad {
 public:
  struct OpClass {
    double weight = 1.0;
    TriggerSource source = TriggerSource::kSyscall;
    // false: user-mode compute (no kernel entry).
    bool is_trigger = true;
    SimDuration median = SimDuration::Micros(5);
    double sigma = 0.5;
    SimDuration cap = SimDuration::Millis(2);
  };

  struct Config {
    std::vector<OpClass> ops;
    // Fraction of wall time the process is runnable. 1.0 = CPU-saturating.
    double duty_cycle = 1.0;
    // Mean busy-burst length when duty_cycle < 1.
    SimDuration burst_mean = SimDuration::Micros(100);
    // Poisson device interrupts (0 = none).
    double device_intr_rate_hz = 0.0;
    TriggerSource device_intr_source = TriggerSource::kOtherIntr;
    SimDuration device_intr_work = SimDuration::Micros(10);
    uint64_t rng_seed = 17;
  };

  StochasticKernelLoad(Kernel* kernel, Config config);

  void Start();

  uint64_t ops_run() const { return ops_run_; }

 private:
  void RunBurst();
  void RunNextOp(SimTime burst_end);
  void ScheduleDeviceInterrupt();
  const OpClass& DrawOp();

  Kernel* kernel_;
  Config config_;
  Rng rng_;
  double total_weight_ = 0;
  uint64_t ops_run_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_WORKLOAD_STOCHASTIC_LOAD_H_
