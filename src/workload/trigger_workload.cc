#include "src/workload/trigger_workload.h"

#include <utility>

#include "src/httpsim/http_testbed.h"
#include "src/appsim/compile_job_model.h"
#include "src/appsim/media_player_model.h"
#include "src/nfssim/nfs_server_model.h"
#include "src/workload/background_compute.h"
#include "src/workload/stochastic_load.h"

namespace softtimer {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kApache:
      return "ST-Apache";
    case WorkloadKind::kApacheCompute:
      return "ST-Apache-compute";
    case WorkloadKind::kFlash:
      return "ST-Flash";
    case WorkloadKind::kRealAudio:
      return "ST-real-audio";
    case WorkloadKind::kNfs:
      return "ST-nfs";
    case WorkloadKind::kKernelBuild:
      return "ST-kernel-build";
  }
  return "?";
}

namespace {

// --- Web-server workloads (mechanistic, via httpsim) ------------------------

class HttpTriggerWorkload : public TriggerWorkload {
 public:
  HttpTriggerWorkload(WorkloadKind kind, const MachineProfile& profile, uint64_t seed)
      : kind_(kind) {
    HttpTestbed::Config cfg;
    cfg.profile = profile;
    cfg.rng_seed = seed;
    cfg.server.kind = (kind == WorkloadKind::kFlash) ? HttpServerModel::ServerKind::kFlash
                                                      : HttpServerModel::ServerKind::kApache;
    testbed_ = std::make_unique<HttpTestbed>(std::move(cfg));
    if (kind == WorkloadKind::kApacheCompute) {
      BackgroundCompute::Config bc;
      bc.rng_seed = seed + 4242;
      compute_ = std::make_unique<BackgroundCompute>(&testbed_->kernel(), bc);
    }
  }

  Kernel& kernel() override { return testbed_->kernel(); }
  Simulator& sim() override { return testbed_->sim(); }

  void Start() override {
    testbed_->Start();
    if (compute_) {
      compute_->Start();
    }
  }

  std::string name() const override { return WorkloadKindName(kind_); }

 private:
  WorkloadKind kind_;
  std::unique_ptr<HttpTestbed> testbed_;
  std::unique_ptr<BackgroundCompute> compute_;
};

// --- NFS workload (mechanistic: disk model + RPC server) --------------------

class NfsTriggerWorkload : public TriggerWorkload {
 public:
  NfsTriggerWorkload(const MachineProfile& profile, uint64_t seed) {
    Kernel::Config kc;
    kc.profile = profile;
    kc.rng_seed = seed;
    // The disk-bound server idles ~90% of the time; the spinning idle loop
    // is the dominant trigger source (the paper's 2 us ST-nfs samples).
    kc.idle_behavior = Kernel::IdleBehavior::kSpin;
    kernel_ = std::make_unique<Kernel>(&sim_, kc);

    Link::Config lan;
    lan.bandwidth_bps = 100e6;
    lan.propagation_delay = SimDuration::Micros(5);
    uplink_ = std::make_unique<Link>(&sim_, lan);
    downlink_ = std::make_unique<Link>(&sim_, lan);
    nic_ = std::make_unique<Nic>(&sim_, kernel_.get(), downlink_.get(), Nic::Config{});

    NfsServerModel::Config sc;
    sc.rng_seed = seed + 5;
    server_ = std::make_unique<NfsServerModel>(kernel_.get(), nic_.get(), sc);
    nic_->set_rx_handler([this](const Packet& p) { server_->OnPacket(p); });
    uplink_->set_receiver([this](const Packet& p) { nic_->OnWireRx(p); });

    NfsClientFarm::Config fc;
    fc.rng_seed = seed + 9;
    farm_ = std::make_unique<NfsClientFarm>(&sim_, uplink_.get(), fc);
    downlink_->set_receiver([this](const Packet& p) { farm_->OnPacket(p); });
  }

  Kernel& kernel() override { return *kernel_; }
  Simulator& sim() override { return sim_; }
  void Start() override { farm_->Start(); }
  std::string name() const override { return "ST-nfs"; }

 private:
  Simulator sim_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Link> uplink_;
  std::unique_ptr<Link> downlink_;
  std::unique_ptr<Nic> nic_;
  std::unique_ptr<NfsServerModel> server_;
  std::unique_ptr<NfsClientFarm> farm_;
};

// --- Application workloads (mechanistic) -------------------------------------

class MediaPlayerTriggerWorkload : public TriggerWorkload {
 public:
  MediaPlayerTriggerWorkload(const MachineProfile& profile, uint64_t seed) {
    Kernel::Config kc;
    kc.profile = profile;
    kc.rng_seed = seed;
    kc.idle_behavior = Kernel::IdleBehavior::kSpin;
    kernel_ = std::make_unique<Kernel>(&sim_, kc);
    MediaPlayerModel::Config mc;
    mc.rng_seed = seed + 3;
    player_ = std::make_unique<MediaPlayerModel>(kernel_.get(), mc);
  }
  Kernel& kernel() override { return *kernel_; }
  Simulator& sim() override { return sim_; }
  void Start() override { player_->Start(); }
  std::string name() const override { return "ST-real-audio"; }

 private:
  Simulator sim_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<MediaPlayerModel> player_;
};

class CompileTriggerWorkload : public TriggerWorkload {
 public:
  CompileTriggerWorkload(const MachineProfile& profile, uint64_t seed) {
    Kernel::Config kc;
    kc.profile = profile;
    kc.rng_seed = seed;
    kc.idle_behavior = Kernel::IdleBehavior::kSpin;
    kernel_ = std::make_unique<Kernel>(&sim_, kc);
    CompileJobModel::Config cc;
    cc.rng_seed = seed + 7;
    build_ = std::make_unique<CompileJobModel>(kernel_.get(), cc);
  }
  Kernel& kernel() override { return *kernel_; }
  Simulator& sim() override { return sim_; }
  void Start() override { build_->Start(); }
  std::string name() const override { return "ST-kernel-build"; }

 private:
  Simulator sim_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<CompileJobModel> build_;
};

// --- Stochastic workloads ----------------------------------------------------

class StochasticTriggerWorkload : public TriggerWorkload {
 public:
  StochasticTriggerWorkload(WorkloadKind kind, const MachineProfile& profile, uint64_t seed)
      : kind_(kind) {
    Kernel::Config kc;
    kc.profile = profile;
    kc.rng_seed = seed;
    // These workloads leave idle time; the idle loop polls (ST-nfs's 2 us
    // samples come from exactly that).
    kc.idle_behavior = Kernel::IdleBehavior::kSpin;
    kernel_ = std::make_unique<Kernel>(&sim_, kc);

    StochasticKernelLoad::Config lc = LoadConfigFor(kind);
    lc.rng_seed = seed + 31;
    load_ = std::make_unique<StochasticKernelLoad>(kernel_.get(), std::move(lc));
  }

  Kernel& kernel() override { return *kernel_; }
  Simulator& sim() override { return sim_; }
  void Start() override { load_->Start(); }
  std::string name() const override { return WorkloadKindName(kind_); }

 private:
  using Op = StochasticKernelLoad::OpClass;

  static SimDuration Us(double v) { return SimDuration::Micros(v); }

  static StochasticKernelLoad::Config LoadConfigFor(WorkloadKind kind) {
    StochasticKernelLoad::Config c;
    switch (kind) {
      case WorkloadKind::kNfs:
        // Disk-bound NFS server: ~90% idle (Section 5.3); short RPC bursts
        // of syscall/ip work, disk interrupts, and an idle loop that yields
        // the dominant ~2 us samples.
        c.ops = {
            Op{0.45, TriggerSource::kSyscall, true, Us(5), 0.5, Us(100)},
            Op{0.25, TriggerSource::kIpOutput, true, Us(5), 0.5, Us(100)},
            Op{0.15, TriggerSource::kTcpIpOthers, true, Us(4), 0.5, Us(100)},
            Op{0.15, TriggerSource::kSyscall, false, Us(6), 0.6, Us(200)},
            // Rare long uninterruptible stretch (buffer-cache/driver work):
            // the source of the paper's 910 us maximum.
            Op{0.004, TriggerSource::kSyscall, false, Us(90), 1.0, Us(850)},
        };
        c.duty_cycle = 0.10;
        c.burst_mean = Us(120);
        c.device_intr_rate_hz = 250;  // disk completions
        c.device_intr_work = Us(14);
        break;
      case WorkloadKind::kRealAudio:
        // RealPlayer saturates the CPU with user-mode decoding but "performs
        // many system calls" (Section 5.3): short syscalls interleaved with
        // compute stretches.
        c.ops = {
            Op{0.62, TriggerSource::kSyscall, true, Us(4.6), 0.55, Us(300)},
            Op{0.28, TriggerSource::kSyscall, false, Us(7), 0.75, Us(250)},
            Op{0.05, TriggerSource::kTrap, true, Us(4), 0.5, Us(100)},
            Op{0.03, TriggerSource::kIpOutput, true, Us(5), 0.5, Us(100)},
        };
        c.duty_cycle = 1.0;
        c.device_intr_rate_hz = 120;  // incoming audio stream
        c.device_intr_source = TriggerSource::kIpIntr;
        c.device_intr_work = Us(10);
        break;
      case WorkloadKind::kKernelBuild:
      default:
        // Compilation: storms of very short syscalls and page faults,
        // interrupted by heavy-tailed pure-compute runs (the 1 ms backup
        // interrupt clips the longest gaps, as in the paper's max = 1000 us).
        c.ops = {
            Op{0.72, TriggerSource::kSyscall, true, Us(1.9), 0.45, Us(50)},
            Op{0.14, TriggerSource::kTrap, true, Us(2.2), 0.5, Us(50)},
            Op{0.050, TriggerSource::kSyscall, false, Us(12), 1.15, Us(980)},
            Op{0.011, TriggerSource::kSyscall, false, Us(200), 0.9, Us(980)},
        };
        c.duty_cycle = 0.96;
        c.burst_mean = SimDuration::Millis(3);
        c.device_intr_rate_hz = 180;  // disk traffic
        c.device_intr_work = Us(12);
        break;
    }
    return c;
  }

  WorkloadKind kind_;
  Simulator sim_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<StochasticKernelLoad> load_;
};

}  // namespace

std::unique_ptr<TriggerWorkload> MakeStochasticTriggerWorkload(WorkloadKind kind,
                                                               const MachineProfile& profile,
                                                               uint64_t seed) {
  return std::make_unique<StochasticTriggerWorkload>(kind, profile, seed);
}

std::unique_ptr<TriggerWorkload> MakeTriggerWorkload(WorkloadKind kind,
                                                     const MachineProfile& profile,
                                                     uint64_t seed) {
  switch (kind) {
    case WorkloadKind::kApache:
    case WorkloadKind::kApacheCompute:
    case WorkloadKind::kFlash:
      return std::make_unique<HttpTriggerWorkload>(kind, profile, seed);
    case WorkloadKind::kNfs:
      return std::make_unique<NfsTriggerWorkload>(profile, seed);
    case WorkloadKind::kRealAudio:
      return std::make_unique<MediaPlayerTriggerWorkload>(profile, seed);
    case WorkloadKind::kKernelBuild:
      return std::make_unique<CompileTriggerWorkload>(profile, seed);
  }
  return nullptr;
}

}  // namespace softtimer
