// Compute-bound background process (the "ST-Apache-compute" ingredient).
//
// A real decayed-priority scheduler lets a CPU hog run only when the server
// has nothing runnable, in scheduler-quantum-sized chunks. On our FIFO CPU
// model we approximate that by injecting short compute chunks at a low duty
// cycle: they fill would-be idle time (suppressing idle-loop triggers) and
// occasionally delay server work by up to one chunk, which reproduces the
// paper's observation that the background process leaves the trigger
// distribution essentially unchanged while stretching its tail slightly
// (Table 1: max 476 -> 585 us; Figure 5's rare 1 ms windows with median
// above 40 us).

#ifndef SOFTTIMER_SRC_WORKLOAD_BACKGROUND_COMPUTE_H_
#define SOFTTIMER_SRC_WORKLOAD_BACKGROUND_COMPUTE_H_

#include "src/machine/kernel.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace softtimer {

class BackgroundCompute {
 public:
  struct Config {
    // Mean spacing between compute chunks.
    SimDuration period = SimDuration::Millis(4);
    // Chunk length distribution (log-normal around the median).
    SimDuration chunk_median = SimDuration::Micros(250);
    double chunk_sigma = 0.6;
    uint64_t rng_seed = 99;
  };

  BackgroundCompute(Kernel* kernel, Config config)
      : kernel_(kernel), config_(config), rng_(config.rng_seed) {}

  void Start() { ScheduleNext(); }

  uint64_t chunks_run() const { return chunks_; }

 private:
  void ScheduleNext() {
    kernel_->sim()->ScheduleAfter(rng_.ExpDuration(config_.period), [this] {
      SimDuration chunk = rng_.LogNormalDuration(config_.chunk_median, config_.chunk_sigma);
      ++chunks_;
      // Pure user-mode computation: CPU time without any kernel entry.
      kernel_->cpu(0).Submit(kernel_->profile().Work(chunk));
      ScheduleNext();
    });
  }

  Kernel* kernel_;
  Config config_;
  Rng rng_;
  uint64_t chunks_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_WORKLOAD_BACKGROUND_COMPUTE_H_
