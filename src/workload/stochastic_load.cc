#include "src/workload/stochastic_load.h"

#include <cassert>

namespace softtimer {

StochasticKernelLoad::StochasticKernelLoad(Kernel* kernel, Config config)
    : kernel_(kernel), config_(std::move(config)), rng_(config_.rng_seed) {
  assert(!config_.ops.empty());
  assert(config_.duty_cycle > 0.0 && config_.duty_cycle <= 1.0);
  for (const auto& op : config_.ops) {
    total_weight_ += op.weight;
  }
}

void StochasticKernelLoad::Start() {
  RunBurst();
  if (config_.device_intr_rate_hz > 0) {
    ScheduleDeviceInterrupt();
  }
}

const StochasticKernelLoad::OpClass& StochasticKernelLoad::DrawOp() {
  double pick = rng_.NextDouble() * total_weight_;
  for (const auto& op : config_.ops) {
    pick -= op.weight;
    if (pick <= 0) {
      return op;
    }
  }
  return config_.ops.back();
}

void StochasticKernelLoad::RunBurst() {
  SimTime burst_end = SimTime::Max();
  if (config_.duty_cycle < 1.0) {
    burst_end = kernel_->sim()->now() + rng_.ExpDuration(config_.burst_mean);
  }
  RunNextOp(burst_end);
}

void StochasticKernelLoad::RunNextOp(SimTime burst_end) {
  Simulator* sim = kernel_->sim();
  if (sim->now() >= burst_end) {
    // Burst over: idle for the complementary share of the duty cycle, then
    // burst again. (The idle loop owns the CPU meanwhile.)
    double idle_share = (1.0 - config_.duty_cycle) / config_.duty_cycle;
    SimDuration gap = rng_.ExpDuration(config_.burst_mean * idle_share);
    sim->ScheduleAfter(gap, [this] { RunBurst(); });
    return;
  }
  const OpClass& cls = DrawOp();
  SimDuration cost = rng_.LogNormalDuration(cls.median, cls.sigma);
  if (cost > cls.cap) {
    cost = cls.cap;
  }
  ++ops_run_;
  auto cont = [this, burst_end] { RunNextOp(burst_end); };
  if (cls.is_trigger) {
    kernel_->KernelOp(cls.source, cost, cont);
  } else {
    kernel_->cpu(0).Submit(kernel_->profile().Work(cost), cont);
  }
}

void StochasticKernelLoad::ScheduleDeviceInterrupt() {
  SimDuration gap = rng_.ExpDuration(
      SimDuration::Seconds(1.0 / config_.device_intr_rate_hz));
  kernel_->sim()->ScheduleAfter(gap, [this] {
    kernel_->RaiseInterrupt(config_.device_intr_source, config_.device_intr_work);
    ScheduleDeviceInterrupt();
  });
}

}  // namespace softtimer
